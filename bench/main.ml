(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the GPU simulator, plus optional Bechamel
   wall-clock microbenchmarks of the real kernel implementations.

   Usage:
     bench/main.exe                   run all tables and figures
     bench/main.exe --table5 --fig6   run selected experiments
     bench/main.exe --micro           run the Bechamel microbenchmarks
     bench/main.exe --micro --json    also write BENCH_micro.json (name -> ns/run)
     bench/main.exe --max-edges 9000  larger physical replicas (slower)  *)

module H = Hector_experiments.Harness

let experiments : (string * string * (H.t -> unit)) list =
  [
    ("--table1", "Table 1: FLOP/memory/launch analysis of a_HGT", Hector_experiments.Table1.run);
    ("--fig1", "Figure 1: Graphiler vs Hector inference breakdown", Hector_experiments.Fig1.run);
    ("--table2", "Table 2: compiler feature matrix", Hector_experiments.Table2.run);
    ("--table4", "Table 4: datasets", Hector_experiments.Table4.run);
    ("--fig5", "Figure 5: Hector best vs prior systems", Hector_experiments.Fig5.run);
    ("--table5", "Table 5: compaction & fusion speedups", Hector_experiments.Table5.run);
    ("--table6", "Table 6: unoptimized Hector vs best SOTA", Hector_experiments.Table6.run);
    ("--fig6", "Figure 6: RGAT breakdown under U/C/F/C+F", Hector_experiments.Fig6.run);
    ("--ablation", "Ablation: schedules, traversal strategy, devices, autotune",
      Hector_experiments.Ablation.run);
    ("--minibatch", "Minibatch step breakdown (extension of paper section 6)",
      Hector_experiments.Minibatch_exp.run);
  ]

(* --- Bechamel microbenchmarks: one Test.make per table/figure, measuring
   the real (wall-clock) execution of that experiment's core computation on
   a small fixed input. --- *)

let micro_graph ?(seed = 11) () =
  Hector_graph.Generator.generate
    {
      Hector_graph.Generator.name = "micro";
      num_ntypes = 3;
      num_etypes = 8;
      num_nodes = 300;
      num_edges = 1000;
      compaction_target = 0.4;
      scale = 1.0;
      seed;
    }

let micro_compile ?obs ?(training = false) ~compact ~fusion model =
  Hector_core.Compiler.compile ?obs
    ~options:(Hector_core.Compiler.options_of_flags ~training ~compact ~fusion ())
    (Hector_models.Model_defs.by_name model ~in_dim:32 ~out_dim:16 ())

(* One microbenchmark: the measured closure, plus the session driving it
   (when there is one) so the harness can also report simulated time. *)
type micro_case = {
  cname : string;
  fn : unit -> unit;
  csession : Hector_runtime.Session.t option;
}

let micro_cases () =
  let graph = micro_graph () in
  let session ?training ~compact ~fusion model =
    Hector_runtime.Session.create ~seed:3 ~graph (micro_compile ?training ~compact ~fusion model)
  in
  let forward_case cname ~compact ~fusion model =
    let s = session ~compact ~fusion model in
    { cname; fn = (fun () -> ignore (Hector_runtime.Session.forward s)); csession = Some s }
  in
  let labels = Array.init graph.Hector_graph.Hetgraph.num_nodes (fun i -> i mod 16) in
  let train_case cname model =
    let s = session ~training:true ~compact:false ~fusion:false model in
    {
      cname;
      fn = (fun () -> ignore (Hector_runtime.Session.train_step s ~labels ()));
      csession = Some s;
    }
  in
  let plain cname fn = { cname; fn; csession = None } in
  [
    (* Table 1 driver: compact-map construction *)
    plain "table1/compact_map" (fun () -> ignore (Hector_graph.Compact_map.build graph));
    (* Figure 1 driver: Hector HGT inference epoch *)
    forward_case "fig1/hgt_forward" ~compact:false ~fusion:false "hgt";
    (* Table 4 driver: dataset replica generation *)
    plain "table4/generator" (fun () -> ignore (micro_graph ~seed:1 ()));
    (* Figure 5 drivers: one epoch per model *)
    forward_case "fig5/rgcn_forward" ~compact:false ~fusion:false "rgcn";
    forward_case "fig5/rgat_forward" ~compact:false ~fusion:false "rgat";
    train_case "fig5/rgcn_train" "rgcn";
    (* Table 5 drivers: the optimized configurations *)
    forward_case "table5/rgat_compact" ~compact:true ~fusion:false "rgat";
    forward_case "table5/rgat_fused" ~compact:false ~fusion:true "rgat";
    (* Table 6 driver: compilation itself *)
    plain "table6/compile_rgat" (fun () ->
        ignore (micro_compile ~compact:true ~fusion:true "rgat"));
    (* Figure 6 driver: the C+F configuration *)
    forward_case "fig6/rgat_compact_fused" ~compact:true ~fusion:true "rgat";
  ]

type micro_result = {
  ns : float option;  (* ns/run (Bechamel OLS estimate) *)
  sim_ms : float option;  (* simulated GPU time of one run (session cases) *)
  allocs : int;  (* tensor allocations in one steady-state run *)
  copied : int;  (* bytes moved by gather/scatter/copy in one run *)
  launches : int option;  (* kernel launches in one run (session cases) *)
}

(* --- observability snapshot (the "_meta" entry of BENCH_micro.json) ---

   Re-runs the two flagship micro cases with tracing + observability
   enabled on fresh sessions (the measured sessions stay obs-free so the
   wall-clock numbers are undisturbed) and captures their metrics JSON and
   a merged Chrome trace. *)

let meta_snapshots () =
  let snapshot name ~training ~compact ~fusion model =
    let graph = micro_graph () in
    let obs = Hector_obs.create () in
    let compiled = micro_compile ~obs ~training ~compact ~fusion model in
    let config =
      {
        Hector_runtime.Session.Config.default with
        Hector_runtime.Session.Config.seed = 3;
        trace = true;
        observability = Some obs;
      }
    in
    let s = Hector_runtime.Session.create ~config ~graph compiled in
    (if training then
       let labels = Array.init graph.Hector_graph.Hetgraph.num_nodes (fun i -> i mod 16) in
       ignore (Hector_runtime.Session.train_step s ~labels ())
     else ignore (Hector_runtime.Session.forward s));
    (name, Hector_runtime.Session.metrics_json s, Hector_runtime.Session.chrome_trace s)
  in
  [
    snapshot "fig5/rgcn_train" ~training:true ~compact:false ~fusion:false "rgcn";
    snapshot "table5/rgat_compact" ~training:false ~compact:true ~fusion:false "rgat";
  ]

(* --- baseline comparison (--check) ---------------------------------

   Reads a previously written BENCH_micro.json and returns name -> ns/run.
   Both formats are accepted: the historical flat form ["name": 123.4] and
   the current object form ["name": {"ns": 123.4, ...}] — one entry per
   line either way, which keeps the reader trivial. *)

let substring_index hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go 0

let float_after line i =
  let len = String.length line in
  let rec skip i = if i < len && (line.[i] = ':' || line.[i] = ' ') then skip (i + 1) else i in
  let i = skip i in
  let j = ref i in
  while
    !j < len
    && match line.[!j] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false
  do
    incr j
  done;
  if !j = i then None else float_of_string_opt (String.sub line i (!j - i))

let read_baseline path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '"' with
       | None -> ()
       | Some q0 -> (
           match String.index_from_opt line (q0 + 1) '"' with
           | None -> ()
           | Some q1 ->
               let name = String.sub line (q0 + 1) (q1 - q0 - 1) in
               (* the "_meta" entry is an observability snapshot, not a
                  measurement — never part of the regression gate *)
               if not (String.equal name "_meta") then begin
                 let ns =
                   match substring_index line "\"ns\"" with
                   | Some i -> float_after line (i + 4)
                   | None -> float_after line (q1 + 1)
                 in
                 let sim =
                   match substring_index line "\"sim_ms\"" with
                   | Some i -> float_after line (i + 8)
                   | None -> None
                 in
                 let launches =
                   match substring_index line "\"launches\"" with
                   | Some i ->
                       Option.map int_of_float (float_after line (i + 10))
                   | None -> None
                 in
                 if ns <> None || sim <> None || launches <> None then
                   entries := (name, ns, sim, launches) :: !entries
               end)
     done
   with End_of_file -> close_in ic);
  List.rev !entries

let check_regressions ~baseline ~tolerance results =
  let regressions = ref [] in
  Printf.printf "\nRegression check against %d baseline entries (tolerance %+.0f%%):\n"
    (List.length baseline) (tolerance *. 100.0);
  let compare_one name unit base est =
    let ratio = est /. base in
    let flag = if est > base *. (1.0 +. tolerance) then "REGRESSION" else "ok" in
    if String.equal flag "REGRESSION" then regressions := (name ^ " " ^ unit) :: !regressions;
    Printf.printf "  %-28s %12.3f -> %12.3f %s  (%5.2fx)  %s\n" name base est unit ratio flag
  in
  (* launch counts gate one-sided with ZERO tolerance: they are exact on
     the simulated engine, so any increase over the committed baseline is a
     regression (a fusion or planning change silently adding launches) *)
  let compare_launches name base est =
    let flag = if est > base then "REGRESSION" else "ok" in
    if String.equal flag "REGRESSION" then regressions := (name ^ " launches") :: !regressions;
    Printf.printf "  %-28s %12d -> %12d launches (one-sided)  %s\n" name base est flag
  in
  List.iter
    (fun (name, base_ns, base_sim, base_launches) ->
      let r = List.assoc_opt name results in
      (match (base_ns, r) with
      | Some base, Some { ns = Some est; _ } -> compare_one name "ns/run" base est
      | Some base, _ -> Printf.printf "  %-28s %12.1f -> (no measurement)\n" name base
      | None, _ -> ());
      (match (base_sim, r) with
      | Some base, Some { sim_ms = Some est; _ } -> compare_one name "sim-ms" base est
      | Some base, _ -> Printf.printf "  %-28s %12.3f -> (no simulated time)\n" name base
      | None, _ -> ());
      match (base_launches, r) with
      | Some base, Some { launches = Some est; _ } -> compare_launches name base est
      | Some base, _ -> Printf.printf "  %-28s %12d -> (no launch count)\n" name base
      | None, _ -> ())
    baseline;
  match !regressions with
  | [] ->
      Printf.printf "No regressions.\n";
      true
  | names ->
      Printf.printf "%d regression(s): %s\n" (List.length names)
        (String.concat ", " (List.rev names));
      false

let run_micro ~json ~check ~tolerance () =
  let open Bechamel in
  (* read the baseline first: with [--json --check FILE] pointing at the
     same path, the comparison must see the committed numbers, not the
     file this run is about to write *)
  let baseline = Option.map read_baseline check in
  let cases = micro_cases () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  print_endline "Bechamel microbenchmarks (wall-clock of the real implementations):";
  let results =
    List.map
      (fun { cname = name; fn; csession } ->
        let test = Test.make ~name (Staged.stage fn) in
        let measured =
          Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
        in
        let analyzed =
          Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
            (Toolkit.Instance.monotonic_clock) measured
        in
        let ns =
          Hashtbl.fold
            (fun _ result acc ->
              match (acc, Bechamel.Analyze.OLS.estimates result) with
              | None, Some [ est ] -> Some est
              | acc, _ -> acc)
            analyzed None
        in
        (* one instrumented steady-state run (Bechamel already warmed the
           sessions, so plan arenas exist and allocation counts are the
           per-step steady state, not first-run setup) *)
        let a0 = Hector_tensor.Tensor.allocation_count () in
        let c0 = Hector_tensor.Tensor.copied_bytes () in
        (match csession with Some s -> Hector_runtime.Session.reset_clock s | None -> ());
        fn ();
        let allocs = Hector_tensor.Tensor.allocation_count () - a0 in
        let copied = Hector_tensor.Tensor.copied_bytes () - c0 in
        let sim_ms =
          Option.map
            (fun s -> Hector_gpu.Engine.elapsed_ms (Hector_runtime.Session.engine s))
            csession
        in
        let launches =
          Option.map
            (fun s ->
              (Hector_gpu.Stats.total
                 (Hector_gpu.Engine.stats (Hector_runtime.Session.engine s)))
                .Hector_gpu.Stats.launches)
            csession
        in
        (match ns with
        | Some est ->
            Printf.printf "  %-28s %12.1f ns/run %8d allocs %12d copied-bytes%s%s\n" name est
              allocs copied
              (match sim_ms with Some s -> Printf.sprintf "  %10.3f sim-ms" s | None -> "")
              (match launches with Some l -> Printf.sprintf "  %4d launches" l | None -> "")
        | None -> Printf.printf "  %-28s (no estimate) %8d allocs %12d copied-bytes\n" name
              allocs copied);
        (name, { ns; sim_ms; allocs; copied; launches }))
      cases
  in
  if json then begin
    (* machine-readable perf trajectory: name -> {ns, sim_ms, allocs,
       copied_bytes, launches}, one entry per line, plus a "_meta" line
       holding the observability snapshots of the flagship cases *)
    let meta = meta_snapshots () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (name, r) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  \"%s\": {\"ns\": %s, \"sim_ms\": %s, \"allocs\": %d, \"copied_bytes\": %d, \
              \"launches\": %s}"
             (Hector_gpu.Engine.json_escape name)
             (match r.ns with Some e -> Printf.sprintf "%.1f" e | None -> "null")
             (match r.sim_ms with Some s -> Printf.sprintf "%.6f" s | None -> "null")
             r.allocs r.copied
             (match r.launches with Some l -> string_of_int l | None -> "null")))
      results;
    Buffer.add_string buf ",\n  \"_meta\": {";
    List.iteri
      (fun i (name, metrics, _) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": %s" (Hector_gpu.Engine.json_escape name) metrics))
      meta;
    Buffer.add_string buf "}\n}\n";
    let oc = open_out "BENCH_micro.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    (* the matching timeline: simulated kernels (with per-launch provenance
       args) merged with compiler/runtime wall-clock spans *)
    let oc = open_out "BENCH_trace.json" in
    (match meta with (_, _, trace) :: _ -> output_string oc trace | [] -> ());
    close_out oc;
    Printf.printf "\nWrote BENCH_micro.json (%d entries + _meta) and BENCH_trace.json (HECTOR_DOMAINS=%d)\n"
      (List.length results)
      (Hector_tensor.Domain_pool.num_domains ())
  end;
  match (check, baseline) with
  | Some _, Some baseline ->
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- serving benchmark (--serve) -----------------------------------

   One deterministic open-loop serving run: batched RGCN inference over a
   synthetic parent graph under a Poisson arrival trace, entirely on the
   simulated clock.  Writes BENCH_serve.json in the same shape as
   BENCH_micro.json (per-entry "sim_ms" + a "_meta" snapshot), so --check
   gates it with the same one-sided tolerance mechanism.  Every gated
   entry is "larger = worse": latency percentiles, inverse throughput and
   launches per request. *)

module Serve = Hector_serve.Serve
module Workload = Hector_serve.Workload

let run_serve ~json ~check ~tolerance () =
  let baseline = Option.map read_baseline check in
  let graph =
    Hector_graph.Generator.generate
      {
        Hector_graph.Generator.name = "serve_bench";
        num_ntypes = 3;
        num_etypes = 8;
        num_nodes = 400;
        num_edges = 1600;
        compaction_target = 0.4;
        scale = 1.0;
        seed = 17;
      }
  in
  let program = Hector_models.Model_defs.rgcn ~in_dim:32 ~out_dim:16 () in
  let config =
    {
      Serve.default_config with
      Serve.fanout = 6;
      hops = 2;
      max_batch = Some 8;
      max_wait_ms = 5.0;
      queue_capacity = Some 128;
    }
  in
  let server = Serve.create ~config ~graph program in
  let requests =
    Workload.generate
      ~spec:
        {
          Workload.seed = 42;
          rate_rps = 1500.0;
          requests = 96;
          seeds_per_request = 4;
        }
      ~num_nodes:graph.Hector_graph.Hetgraph.num_nodes ()
  in
  ignore (Serve.serve server requests);
  let s = Serve.load_stats server in
  let ms_per_request =
    if s.Serve.throughput_rps > 0.0 then 1000.0 /. s.Serve.throughput_rps else 0.0
  in
  Printf.printf
    "Serving benchmark (simulated clock, open-loop %d requests):\n\
    \  served %d, shed %d, %d batches (mean size %.2f)\n\
    \  throughput %.1f req/s   latency p50 %.3f / p95 %.3f / p99 %.3f sim-ms\n\
    \  %.2f launches per request\n"
    s.Serve.requests s.Serve.lserved s.Serve.lshed s.Serve.lbatches s.Serve.mean_batch
    s.Serve.throughput_rps s.Serve.p50_ms s.Serve.p95_ms s.Serve.p99_ms
    s.Serve.launches_per_request;
  (* total kernel launches of the whole run rides on the per-request entry;
     it gates one-sided with zero tolerance like every launch column *)
  let entries =
    [
      ("serve/p50", s.Serve.p50_ms, None);
      ("serve/p95", s.Serve.p95_ms, None);
      ("serve/p99", s.Serve.p99_ms, None);
      ("serve/ms_per_request", ms_per_request, None);
      ("serve/launches_per_request", s.Serve.launches_per_request, Some (Serve.launches server));
    ]
  in
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    List.iter
      (fun (name, v, launches) ->
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\": {\"sim_ms\": %.6f%s},\n" name v
             (match launches with
             | Some l -> Printf.sprintf ", \"launches\": %d" l
             | None -> "")))
      entries;
    Buffer.add_string buf (Printf.sprintf "  \"_meta\": %s\n}\n" (Serve.metrics_json server));
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nWrote BENCH_serve.json (%d entries + _meta)\n" (List.length entries)
  end;
  match (check, baseline) with
  | Some _, Some baseline ->
      let results =
        List.map
          (fun (name, v, launches) ->
            (name, { ns = None; sim_ms = Some v; allocs = 0; copied = 0; launches }))
          entries
      in
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- autotune benchmark (--tune) -----------------------------------

   Runs the two-stage autotuner (estimate the full candidate space with
   Plan_cost, measure the top-k plus the four fixed layouts) on every
   model-zoo entry over the micro graph and gates, in-run and one-sided,
   that the tuned configuration matches or beats EVERY fixed U/C/F/C+F
   configuration.  Writes BENCH_tune.json in the BENCH_micro.json shape
   (per-entry "sim_ms" + a "_meta" table of winners), so --check also
   gates the tuned and fixed times against the committed baseline. *)

module Autotune = Hector_runtime.Autotune
module Compiler = Hector_core.Compiler

let run_tune ~json ~check ~tolerance () =
  let baseline = Option.map read_baseline check in
  let graph = micro_graph () in
  let fixed_configs =
    [ ("U", false, false); ("C", true, false); ("F", false, true); ("C+F", true, true) ]
  in
  print_endline "Autotune benchmark (two-stage search, simulated clock):";
  let failures = ref [] in
  let per_model =
    List.map
      (fun model ->
        let program = Hector_models.Model_defs.by_name model ~in_dim:32 ~out_dim:16 () in
        let r = Autotune.search ~graph program in
        let best = r.Autotune.best in
        let measured_of options =
          let id = Compiler.options_id options in
          match
            List.find_opt
              (fun (c : Autotune.candidate) ->
                String.equal (Compiler.options_id c.Autotune.options) id)
              r.Autotune.all
          with
          | Some c -> c.Autotune.time_ms
          | None -> nan (* fixed layouts are always measured; unreachable *)
        in
        let fixed =
          List.map
            (fun (tag, compact, fusion) ->
              (tag, measured_of (Compiler.options_of_flags ~compact ~fusion ())))
            fixed_configs
        in
        Printf.printf "  %-5s tuned %-28s est %.4f measured %.4f sim-ms\n" model
          (Compiler.options_id best.Autotune.options)
          best.Autotune.estimated_ms best.Autotune.time_ms;
        List.iter
          (fun (tag, t) ->
            let ok = best.Autotune.time_ms <= t +. 1e-9 in
            if not ok then
              failures := Printf.sprintf "%s: tuned %.4f > %s %.4f" model
                            best.Autotune.time_ms tag t
                          :: !failures;
            Printf.printf "        fixed %-5s %.4f sim-ms  %s\n" tag t
              (if ok then "ok" else "TUNED SLOWER"))
          fixed;
        (model, best, fixed))
      [ "rgcn"; "rgat"; "hgt" ]
  in
  let entries =
    List.concat_map
      (fun (model, best, fixed) ->
        (Printf.sprintf "tune/%s_tuned" model, best.Autotune.time_ms)
        :: List.map
             (fun (tag, t) ->
               ( Printf.sprintf "tune/%s_%s" model
                   (if String.equal tag "C+F" then "CF" else tag),
                 t ))
             fixed)
      per_model
  in
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  \"%s\": {\"sim_ms\": %.6f},\n" name v))
      entries;
    Buffer.add_string buf "  \"_meta\": {";
    List.iteri
      (fun i (model, best, _) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\": {\"best\": \"%s\", \"estimated_ms\": %.6f, \"measured_ms\": %.6f}"
             model
             (Hector_gpu.Engine.json_escape (Compiler.options_id best.Autotune.options))
             best.Autotune.estimated_ms best.Autotune.time_ms))
      per_model;
    Buffer.add_string buf "}\n}\n";
    let oc = open_out "BENCH_tune.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nWrote BENCH_tune.json (%d entries + _meta)\n" (List.length entries)
  end;
  (* the in-run gate is one-sided and unconditional: a tuned configuration
     slower than any fixed configuration is a search or estimator bug *)
  (match !failures with
  | [] -> Printf.printf "\nTuned >= every fixed configuration on all models.\n"
  | fs ->
      Printf.printf "\n%d tuned-slower failure(s):\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  %s\n" f) (List.rev fs);
      exit 1);
  match (check, baseline) with
  | Some _, Some baseline ->
      let results =
        List.map
          (fun (name, v) ->
            (name, { ns = None; sim_ms = Some v; allocs = 0; copied = 0; launches = None }))
          entries
      in
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- distributed benchmark (--dist) --------------------------------

   Data-parallel RGCN training over a partitioned synthetic graph at 1, 2
   and 4 partitions, entirely on the simulated clock.  Writes
   BENCH_dist.json in the BENCH_micro.json shape (per-entry "sim_ms" + a
   "_meta" cluster snapshot) so --check gates it with the same one-sided
   tolerance mechanism.  Gated entries are all "larger = worse": simulated
   ms per epoch at each partition count, and the comm/compute ratio at 2
   and 4 partitions (a partitioner or interconnect-model regression shows
   up as extra communication). *)

module Replica = Hector_dist.Replica

let run_dist ~json ~check ~tolerance () =
  let baseline = Option.map read_baseline check in
  let graph =
    Hector_graph.Generator.generate
      {
        Hector_graph.Generator.name = "dist_bench";
        num_ntypes = 3;
        num_etypes = 8;
        num_nodes = 400;
        num_edges = 1600;
        compaction_target = 0.4;
        scale = 1.0;
        seed = 29;
      }
  in
  let rng = Hector_tensor.Rng.create 23 in
  let features =
    Hector_tensor.Tensor.randn rng [| graph.Hector_graph.Hetgraph.num_nodes; 32 |]
  in
  let labels =
    Array.init graph.Hector_graph.Hetgraph.num_nodes (fun i -> i mod 16)
  in
  let compiled =
    Hector_core.Compiler.compile
      ~options:(Hector_core.Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:32 ~out_dim:16 ())
  in
  let comms = Hector_dist.Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 () in
  let epochs = 4 in
  let measure ~overlap parts =
    let cfg =
      {
        Replica.Config.default with
        Replica.Config.parts = Some parts;
        comms = Some comms;
        overlap;
      }
    in
    let cluster = Replica.create ~config:cfg ~features ~graph [ compiled ] in
    ignore (Replica.train_step cluster ~labels ());
    Replica.reset_clocks cluster;
    for _ = 1 to epochs do
      ignore (Replica.train_step cluster ~labels ())
    done;
    let ms_epoch = Replica.elapsed_ms cluster /. float_of_int epochs in
    let launches_epoch = Replica.launches cluster / epochs in
    let busy = Replica.busy_ms cluster in
    let comm_ratio = if busy > 0.0 then Replica.comm_ms cluster /. busy else 0.0 in
    (ms_epoch, launches_epoch, comm_ratio, cluster)
  in
  print_endline "Distributed benchmark (simulated clock, data-parallel RGCN training):";
  let measured =
    List.map
      (fun parts ->
        (* headline numbers use the default overlapped schedule; a blocking
           BSP run of the same cluster quantifies what overlap hides *)
        let ms_epoch, launches_epoch, comm_ratio, cluster = measure ~overlap:true parts in
        let bsp_ms_epoch, _, bsp_comm_ratio, _ = measure ~overlap:false parts in
        let pt = Replica.partition cluster in
        Printf.printf
          "  %d partition(s): %8.3f sim-ms/epoch   %4d launches/epoch   comm/busy %.4f \
           (bsp %.4f)   edge cut %4.1f%%   balance %.3f\n"
          parts ms_epoch launches_epoch comm_ratio bsp_comm_ratio
          (100.0 *. Hector_graph.Partition.edge_cut_fraction pt)
          (Hector_graph.Partition.balance pt);
        (parts, ms_epoch, launches_epoch, comm_ratio, bsp_ms_epoch, bsp_comm_ratio, cluster))
      [ 1; 2; 4 ]
  in
  let entries =
    List.concat_map
      (fun (parts, ms_epoch, launches_epoch, comm_ratio, bsp_ms_epoch, bsp_comm_ratio, _) ->
        (Printf.sprintf "dist/p%d_ms_epoch" parts, ms_epoch, Some launches_epoch)
        :: (if parts > 1 then
              [
                (Printf.sprintf "dist/p%d_comm_ratio" parts, comm_ratio, None);
                (Printf.sprintf "dist/p%d_ms_epoch_bsp" parts, bsp_ms_epoch, None);
                (Printf.sprintf "dist/p%d_comm_ratio_bsp" parts, bsp_comm_ratio, None);
              ]
            else []))
      measured
  in
  if json then begin
    let meta =
      match List.rev measured with
      | (_, _, _, _, _, _, cluster) :: _ -> Replica.metrics_json cluster
      | [] -> "{}"
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    List.iter
      (fun (name, v, launches) ->
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\": {\"sim_ms\": %.6f%s},\n" name v
             (match launches with
             | Some l -> Printf.sprintf ", \"launches\": %d" l
             | None -> "")))
      entries;
    Buffer.add_string buf (Printf.sprintf "  \"_meta\": %s\n}\n" meta);
    let oc = open_out "BENCH_dist.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nWrote BENCH_dist.json (%d entries + _meta)\n" (List.length entries)
  end;
  match (check, baseline) with
  | Some _, Some baseline ->
      let results =
        List.map
          (fun (name, v, launches) ->
            (name, { ns = None; sim_ms = Some v; allocs = 0; copied = 0; launches }))
          entries
      in
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- streaming benchmark (--stream) --------------------------------

   One deterministic mixed read/write run: the serving trace of --serve
   interleaved with churn-balanced delta batches applied at micro-batch
   boundaries over a Mutable_graph with 200% capacity slack, so the whole
   trace stays in-slack — the regime the subsystem is designed to keep
   free.  Gated
   entries are "larger = worse": p99 latency under mutation, inverse
   serving throughput, update cost per 1k delta ops, and — the hard
   invariant — recompiles per 1k deltas, which rides the integer
   "launches" field so --check pins it one-sided at ZERO: any in-slack
   delta that re-plans or re-allocates fails the gate outright. *)

module Mg = Hector_stream.Mutable_graph
module Delta = Hector_stream.Delta
module Ss = Hector_stream.Stream_serve

let run_stream ~json ~check ~tolerance () =
  let baseline = Option.map read_baseline check in
  let graph =
    Hector_graph.Generator.generate
      {
        Hector_graph.Generator.name = "stream_bench";
        num_ntypes = 3;
        num_etypes = 8;
        num_nodes = 400;
        num_edges = 1600;
        compaction_target = 0.4;
        scale = 1.0;
        seed = 17;
      }
  in
  let in_dim = 32 in
  let features =
    Hector_tensor.Tensor.randn (Hector_tensor.Rng.create 5)
      [| graph.Hector_graph.Hetgraph.num_nodes; in_dim |]
  in
  let mg = Mg.create ~name:"stream_bench" ~slack:2.0 ~graph ~features () in
  let program = Hector_models.Model_defs.rgcn ~in_dim ~out_dim:16 () in
  let config =
    {
      Serve.default_config with
      Serve.fanout = 6;
      hops = 2;
      max_batch = Some 8;
      max_wait_ms = 5.0;
      queue_capacity = Some 128;
    }
  in
  let server = Ss.create ~config ~mg program in
  let requests =
    Workload.generate
      ~spec:
        {
          Workload.seed = 42;
          rate_rps = 1500.0;
          requests = 96;
          seeds_per_request = 4;
        }
      ~num_nodes:graph.Hector_graph.Hetgraph.num_nodes ()
  in
  let num_deltas = 12 and delta_ops = 25 in
  let n = Array.length requests in
  (* num_deltas + 1 serving segments with one delta batch at each interior
     boundary, generated against the *current* live view so every op is
     feasible by construction *)
  for k = 0 to num_deltas do
    let lo = k * n / (num_deltas + 1) in
    let hi = (k + 1) * n / (num_deltas + 1) in
    ignore (Ss.serve server (Array.sub requests lo (hi - lo)));
    if k < num_deltas then begin
      (* churn-balanced mix: inserts and removals at matched rates, so live
         counts hover around the epoch-0 sizes and the trace stays in-slack *)
      let mix =
        {
          Delta.add_node = 0.06;
          remove_node = 0.06;
          add_edge = 0.22;
          remove_edge = 0.22;
          set_feat = 0.44;
        }
      in
      let d =
        Delta.generate ~mix ~view:(Mg.view mg) ~seed:(1000 + k) ~ops:delta_ops ()
      in
      match Ss.apply server d with
      | Ok _ -> ()
      | Error msg ->
          Printf.eprintf "bench/main.exe: stream delta %d rejected: %s\n" k msg;
          exit 1
    end
  done;
  let c = Mg.counters mg in
  let s = Serve.load_stats (Ss.replica server) in
  let ms_per_request =
    if s.Serve.throughput_rps > 0.0 then 1000.0 /. s.Serve.throughput_rps else 0.0
  in
  let total_ops = c.Mg.ops in
  let update_ms_per_kop =
    if total_ops > 0 then Ss.update_ms server *. 1000.0 /. float_of_int total_ops
    else 0.0
  in
  (* after warmup the plan cache holds exactly one compile; anything past
     it is an in-slack invalidation bug *)
  let excess_recompiles = Ss.recompiles server - 1 in
  let recompiles_per_1k =
    if c.Mg.deltas > 0 then
      float_of_int excess_recompiles *. 1000.0 /. float_of_int c.Mg.deltas
    else 0.0
  in
  Printf.printf
    "Streaming benchmark (simulated clock, %d requests / %d deltas x %d ops):\n\
    \  served %d, shed %d, rejected %d   deltas %d (%d ops, %d rejected)\n\
    \  epochs %d, re-warms %d, recompiles %d (excess %d)\n\
    \  CSR: %d rows patched, %d rebuilds, %d compactions\n\
    \  latency p50 %.3f / p95 %.3f / p99 %.3f sim-ms   update %.3f sim-ms total\n"
    n num_deltas delta_ops (Ss.served server) (Ss.shed server)
    (Ss.rejected server) c.Mg.deltas c.Mg.ops c.Mg.rejected_deltas c.Mg.epochs
    (Ss.rewarms server) (Ss.recompiles server) excess_recompiles
    c.Mg.patched_rows c.Mg.rebuilds c.Mg.compacted s.Serve.p50_ms s.Serve.p95_ms
    s.Serve.p99_ms (Ss.update_ms server);
  let entries =
    [
      ("stream/p50", s.Serve.p50_ms, None);
      ("stream/p99", s.Serve.p99_ms, None);
      ("stream/ms_per_request", ms_per_request, None);
      ("stream/update_ms_per_kop", update_ms_per_kop, None);
      ("stream/recompiles_per_1k", recompiles_per_1k, Some excess_recompiles);
    ]
  in
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    List.iter
      (fun (name, v, launches) ->
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\": {\"sim_ms\": %.6f%s},\n" name v
             (match launches with
             | Some l -> Printf.sprintf ", \"launches\": %d" l
             | None -> "")))
      entries;
    Buffer.add_string buf
      (Printf.sprintf "  \"_meta\": %s\n}\n" (Ss.metrics_json server));
    let oc = open_out "BENCH_stream.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nWrote BENCH_stream.json (%d entries + _meta)\n" (List.length entries)
  end;
  match (check, baseline) with
  | Some _, Some baseline ->
      let results =
        List.map
          (fun (name, v, launches) ->
            (name, { ns = None; sim_ms = Some v; allocs = 0; copied = 0; launches }))
          entries
      in
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- fault-tolerance benchmark (--fault) ----------------------------

   Three deterministic fault drills, entirely on the simulated clock:

   1. crash recovery: 4-replica data-parallel RGCN training with a crash
      scheduled at step 3; survivors detect the dead peer, reload the
      latest checkpoint and re-partition.  Gates the charged
      detection+reload time, and fails in-run if the recovered run leaves
      the uninterrupted loss trajectory (> 1e-6).
   2. message faults: training under a 5% seeded drop rate; gates the
      retry count per 1k kernel launches (deterministic by construction),
      plus the faults-off overhead — simulated-ms and launch-count deltas
      of a rate-0 plan vs no plan, which ride the zero-tolerance integer
      gate: any nonzero overhead fails.
   3. serving degradation: a serve trace where every micro-batch fails;
      gates the shed fraction and pins (again zero-tolerance, via the
      integer field) that served + shed + rejected still accounts for
      every request — degradation is witnessed, never silent. *)

module Fault = Hector_ckpt.Fault
module Failover = Hector_dist.Failover

let run_fault ~json ~check ~tolerance () =
  let baseline = Option.map read_baseline check in
  let graph =
    Hector_graph.Generator.generate
      {
        Hector_graph.Generator.name = "fault_bench";
        num_ntypes = 3;
        num_etypes = 8;
        num_nodes = 400;
        num_edges = 1600;
        compaction_target = 0.4;
        scale = 1.0;
        seed = 29;
      }
  in
  let num_nodes = graph.Hector_graph.Hetgraph.num_nodes in
  let features =
    Hector_tensor.Tensor.randn (Hector_tensor.Rng.create 23) [| num_nodes; 32 |]
  in
  let labels = Array.init num_nodes (fun i -> i mod 16) in
  let compiled =
    Hector_core.Compiler.compile
      ~options:(Hector_core.Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:32 ~out_dim:16 ())
  in
  let config ?comms parts =
    let comms =
      match comms with
      | Some c -> c
      | None -> Hector_dist.Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ()
    in
    { Replica.Config.default with Replica.Config.parts = Some parts; comms = Some comms }
  in
  (* 1. crash recovery --------------------------------------------------- *)
  let ckpt_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hector-bench-fault-%d" (Unix.getpid ()))
  in
  let steps = 5 in
  let uninterrupted =
    Failover.train ~config:(config 4) ~lr:0.05 ~features ~graph ~labels ~steps compiled
  in
  let recovered =
    Failover.train ~config:(config 4)
      ~faults:(Fault.create ~crash_at:(3, 1) ())
      ~dir:ckpt_dir ~every:1 ~lr:0.05 ~features ~graph ~labels ~steps compiled
  in
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat ckpt_dir f)) (Sys.readdir ckpt_dir);
     Unix.rmdir ckpt_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let trajectory_diff =
    Array.fold_left Float.max 0.0
      (Array.map2
         (fun a b -> abs_float (a -. b))
         uninterrupted.Failover.losses recovered.Failover.losses)
  in
  if trajectory_diff > 1e-6 then begin
    Printf.eprintf
      "bench/main.exe: recovered run left the loss trajectory (max diff %.2e > 1e-6)\n"
      trajectory_diff;
    exit 1
  end;
  let recovery_ms = recovered.Failover.recovery_ms in
  (* 2. message faults and the faults-off overhead ----------------------- *)
  let train_cluster cfg =
    let cluster = Replica.create ~config:cfg ~features ~graph [ compiled ] in
    for _ = 1 to 3 do
      ignore (Replica.train_step cluster ~labels ())
    done;
    cluster
  in
  let drop_plan = Fault.create ~seed:7 ~rate:0.05 () in
  let dropped =
    train_cluster
      (config
         ~comms:
           (Hector_dist.Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ~faults:drop_plan ())
         4)
  in
  let retries_per_1k =
    1000.0 *. float_of_int (Fault.retries drop_plan)
    /. float_of_int (Replica.launches dropped)
  in
  let plain = train_cluster (config 4) in
  let zero_plan = Fault.create ~rate:0.0 () in
  let zeroed =
    train_cluster
      (config
         ~comms:
           (Hector_dist.Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ~faults:zero_plan ())
         4)
  in
  let off_overhead_ms = Replica.elapsed_ms zeroed -. Replica.elapsed_ms plain in
  let off_launch_delta = Replica.launches zeroed - Replica.launches plain in
  (* 3. serving degradation ---------------------------------------------- *)
  let serve_plan = Fault.create ~seed:11 ~rate:1.0 () in
  let server =
    Serve.create
      ~config:
        {
          Serve.default_config with
          Serve.fanout = 6;
          hops = 2;
          max_batch = Some 8;
          max_wait_ms = 5.0;
          queue_capacity = Some 128;
          faults = Some serve_plan;
        }
      ~graph
      (Hector_models.Model_defs.rgcn ~in_dim:32 ~out_dim:16 ())
  in
  let requests =
    Workload.generate
      ~spec:{ Workload.seed = 42; rate_rps = 1500.0; requests = 48; seeds_per_request = 4 }
      ~num_nodes ()
  in
  ignore (Serve.serve server requests);
  let seen = Array.length requests in
  let shed_on_fault = float_of_int (Serve.fault_shed server) /. float_of_int seen in
  let accounting_delta =
    Serve.served server + Serve.shed server + Serve.rejected server - seen
  in
  (* the integer gates are one-sided (any increase fails); a negative delta
     would slip through, so pin exact-zero in-run *)
  if accounting_delta <> 0 then begin
    Printf.eprintf "bench/main.exe: %+d requests unaccounted for under faults\n"
      accounting_delta;
    exit 1
  end;
  if off_launch_delta <> 0 || off_overhead_ms <> 0.0 then begin
    Printf.eprintf
      "bench/main.exe: rate-0 fault plan is not free (%+.6f ms, %+d launches)\n"
      off_overhead_ms off_launch_delta;
    exit 1
  end;
  Printf.printf
    "Fault-tolerance benchmark (simulated clock):\n\
    \  crash recovery: detect+reload %.3f sim-ms, trajectory diff %.2e, %d survivors\n\
    \  message faults: %d retries over %d launches (%.3f per 1k), faults-off overhead \
     %+.6f ms / %+d launches\n\
    \  serving: %d/%d requests shed after failed retry (%d batch failures), accounting \
     delta %+d\n"
    recovery_ms trajectory_diff
    (Replica.parts recovered.Failover.cluster)
    (Fault.retries drop_plan) (Replica.launches dropped) retries_per_1k off_overhead_ms
    off_launch_delta (Serve.fault_shed server) seen
    (Serve.batch_failures server) accounting_delta;
  let entries =
    [
      ("fault/recovery_ms", recovery_ms, None);
      ("fault/retries_per_1k", retries_per_1k, None);
      ("fault/off_overhead_ms", off_overhead_ms, Some off_launch_delta);
      ("fault/shed_on_fault", shed_on_fault, Some accounting_delta);
    ]
  in
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    List.iter
      (fun (name, v, launches) ->
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\": {\"sim_ms\": %.6f%s},\n" name v
             (match launches with
             | Some l -> Printf.sprintf ", \"launches\": %d" l
             | None -> "")))
      entries;
    Buffer.add_string buf
      (Printf.sprintf "  \"_meta\": %s\n}\n"
         (Replica.metrics_json recovered.Failover.cluster));
    let oc = open_out "BENCH_fault.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nWrote BENCH_fault.json (%d entries + _meta)\n" (List.length entries)
  end;
  match (check, baseline) with
  | Some _, Some baseline ->
      let results =
        List.map
          (fun (name, v, launches) ->
            (name, { ns = None; sim_ms = Some v; allocs = 0; copied = 0; launches }))
          entries
      in
      if not (check_regressions ~baseline ~tolerance results) then exit 1
  | _ -> ()

(* --- CLI ---------------------------------------------------------- *)

let usage () =
  print_string
    "Usage: bench/main.exe [FLAGS]\n\n\
     Experiment selection (default: all tables and figures):\n";
  List.iter (fun (flag, title, _) -> Printf.printf "  %-12s %s\n" flag title) experiments;
  print_string
    "\nOther flags:\n\
    \  --micro          run the Bechamel wall-clock microbenchmarks instead\n\
    \  --serve          run the inference-serving benchmark instead (batched\n\
    \                   RGCN over a deterministic open-loop arrival trace)\n\
    \  --dist           run the distributed-training benchmark instead\n\
    \                   (data-parallel RGCN at 1/2/4 partitions with halo\n\
    \                   exchange and gradient all-reduce, reported for the\n\
    \                   overlapped schedule and the blocking BSP schedule)\n\
    \  --tune           run the autotuner benchmark instead: two-stage search\n\
    \                   per model-zoo entry, gating (one-sided, in-run) that\n\
    \                   the tuned config beats every fixed U/C/F/C+F config\n\
    \  --stream         run the streaming benchmark instead: the serving trace\n\
    \                   interleaved with delta batches over a mutating graph,\n\
    \                   gating p99 under mutation, update cost per 1k ops and\n\
    \                   (zero-tolerance) recompiles per 1k in-slack deltas\n\
    \  --fault          run the fault-tolerance benchmark instead: a scheduled\n\
    \                   replica crash with checkpoint recovery, seeded message\n\
    \                   drops with bounded retry, and a serve trace where every\n\
    \                   micro-batch fails -- gating recovery time, retries per\n\
    \                   1k launches, shed fraction and (zero-tolerance) the\n\
    \                   faults-off overhead and request accounting\n\
    \  --json           with --micro: write BENCH_micro.json\n\
    \                   (name -> {ns, sim_ms, allocs, copied_bytes}, plus a\n\
    \                   \"_meta\" observability snapshot) and BENCH_trace.json\n\
    \                   (Chrome trace: simulated kernels + compiler spans);\n\
    \                   with --serve: write BENCH_serve.json (latency\n\
    \                   percentiles, throughput, launches per request);\n\
    \                   with --dist: write BENCH_dist.json (sim-ms/epoch and\n\
    \                   comm/compute ratio per partition count);\n\
    \                   with --tune: write BENCH_tune.json (tuned and fixed\n\
    \                   sim-ms per model + a \"_meta\" table of winners);\n\
    \                   with --stream: write BENCH_stream.json (p99 under\n\
    \                   mutation, update cost, excess recompiles);\n\
    \                   with --fault: write BENCH_fault.json (recovery time,\n\
    \                   retries per 1k launches, shed-on-fault fraction)\n\
    \  --check FILE     with --micro/--serve/--dist/--stream: compare against\n\
    \                   a committed BENCH_*.json baseline; exit 1 on any\n\
    \                   regression (launch counts gate one-sided with zero\n\
    \                   tolerance: any increase fails)\n\
    \  --tolerance T    with --check: allowed slowdown fraction\n\
    \                   before a result counts as a regression (default 0.25)\n\
    \  --no-fuse        disable the compiler's inter-op kernel-fusion pass\n\
    \                   (plans reproduce the pre-fusion pipeline bit-for-bit)\n\
    \  --max-nodes N    cap physical replica size (default 2000)\n\
    \  --max-edges N    cap physical replica size (default 6000)\n\
    \  --help           show this message\n\n\
     Environment knobs (parsed by Hector_runtime.Knobs; see README):\n\
    \  HECTOR_DOMAINS   multicore backend size (1 = sequential)\n\
    \  HECTOR_ARENA     0 disables the plan-lifetime memory planner\n\
    \  HECTOR_FUSE_OPS  0 disables inter-op kernel fusion (same as --no-fuse)\n\
    \  HECTOR_OBS       1 enables observability for knob-driven sessions\n\
    \  HECTOR_SERVE_BATCH  serving micro-batch cap (default 8)\n\
    \  HECTOR_SERVE_QUEUE  serving admission-queue bound (default 64)\n\
    \  HECTOR_DIST_PARTS   default partition count for distributed runs\n\
    \  HECTOR_DIST_LATENCY_US / HECTOR_DIST_BW_GBS  interconnect cost model\n\
    \  HECTOR_DIST_CHANNELS  concurrent transfer channels per engine (default 2)\n\
    \  HECTOR_DIST_BUCKET_KB gradient all-reduce bucket size in KiB (default 64)\n\
    \  HECTOR_DIST_PIPELINE  micro-batch pipeline depth (default 1 = off)\n\
    \  HECTOR_TUNE_DB   persistent plan-tuning database path (JSON)\n\
    \  HECTOR_STREAM_SLACK   capacity headroom per type for mutable graphs\n\
    \  HECTOR_STREAM_COMPACT dead-slot fraction that triggers compaction\n\
    \  HECTOR_CKPT_DIR  default checkpoint directory (save/load/latest)\n\
    \  HECTOR_CKPT_KEEP retain only the N newest checkpoints on save\n\
    \  HECTOR_FAULT_SEED / HECTOR_FAULT_RATE  deterministic fault plan for\n\
    \                   comms drops/delays and serve batch failures\n"

let cli_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench/main.exe: %s\n\n" msg;
      usage ();
      exit 1)
    fmt

type cli = {
  mutable micro : bool;
  mutable serve : bool;
  mutable dist : bool;
  mutable tune : bool;
  mutable stream : bool;
  mutable fault : bool;
  mutable json : bool;
  mutable check : string option;
  mutable tolerance : float;
  mutable no_fuse : bool;
  mutable max_nodes : int;
  mutable max_edges : int;
  mutable selected : string list;  (* experiment flags, reversed *)
}

let parse_cli argv =
  let cli =
    {
      micro = false;
      serve = false;
      dist = false;
      tune = false;
      stream = false;
      fault = false;
      json = false;
      check = None;
      tolerance = 0.25;
      no_fuse = false;
      max_nodes = 2000;
      max_edges = 6000;
      selected = [];
    }
  in
  let int_value flag rest =
    match rest with
    | v :: rest -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n > 0 -> (n, rest)
        | Some _ -> cli_error "%s expects a positive integer, got %S" flag v
        | None -> cli_error "%s expects an integer, got %S" flag v)
    | [] -> cli_error "%s expects an integer argument" flag
  in
  let rec go = function
    | [] -> cli
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--micro" :: rest ->
        cli.micro <- true;
        go rest
    | "--serve" :: rest ->
        cli.serve <- true;
        go rest
    | "--dist" :: rest ->
        cli.dist <- true;
        go rest
    | "--tune" :: rest ->
        cli.tune <- true;
        go rest
    | "--stream" :: rest ->
        cli.stream <- true;
        go rest
    | "--fault" :: rest ->
        cli.fault <- true;
        go rest
    | "--json" :: rest ->
        cli.json <- true;
        go rest
    | "--check" :: rest -> (
        match rest with
        | path :: rest ->
            cli.check <- Some path;
            go rest
        | [] -> cli_error "--check expects a baseline file path")
    | "--tolerance" :: rest -> (
        match rest with
        | v :: rest -> (
            match float_of_string_opt (String.trim v) with
            | Some t when t >= 0.0 ->
                cli.tolerance <- t;
                go rest
            | _ -> cli_error "--tolerance expects a non-negative number, got %S" v)
        | [] -> cli_error "--tolerance expects a numeric argument")
    | "--no-fuse" :: rest ->
        cli.no_fuse <- true;
        go rest
    | "--max-nodes" :: rest ->
        let n, rest = int_value "--max-nodes" rest in
        cli.max_nodes <- n;
        go rest
    | "--max-edges" :: rest ->
        let n, rest = int_value "--max-edges" rest in
        cli.max_edges <- n;
        go rest
    | flag :: rest when List.exists (fun (f, _, _) -> String.equal f flag) experiments ->
        cli.selected <- flag :: cli.selected;
        go rest
    | arg :: _ ->
        if String.length arg >= 2 && String.equal (String.sub arg 0 2) "--" then
          cli_error "unknown flag %S" arg
        else cli_error "unexpected argument %S" arg
  in
  go (List.tl (Array.to_list argv))

let () =
  let cli = parse_cli Sys.argv in
  (* the flag overrides the HECTOR_FUSE_OPS hook Knobs registered at init,
     so every compilation below sees fusion off *)
  if cli.no_fuse then Hector_core.Compiler.set_fuse_ops_default (fun () -> false);
  if (if cli.micro then 1 else 0) + (if cli.serve then 1 else 0) + (if cli.dist then 1 else 0)
     + (if cli.tune then 1 else 0) + (if cli.stream then 1 else 0)
     + (if cli.fault then 1 else 0) > 1
  then cli_error "--micro, --serve, --dist, --tune, --stream and --fault are mutually exclusive";
  if cli.json
     && not (cli.micro || cli.serve || cli.dist || cli.tune || cli.stream || cli.fault)
  then
    cli_error
      "--json only makes sense together with --micro, --serve, --dist, --tune, --stream or --fault";
  if cli.check <> None
     && not (cli.micro || cli.serve || cli.dist || cli.tune || cli.stream || cli.fault)
  then
    cli_error
      "--check only makes sense together with --micro, --serve, --dist, --tune, --stream or --fault";
  if cli.micro then run_micro ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else if cli.serve then run_serve ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else if cli.dist then run_dist ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else if cli.tune then run_tune ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else if cli.stream then
    run_stream ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else if cli.fault then
    run_fault ~json:cli.json ~check:cli.check ~tolerance:cli.tolerance ()
  else begin
    let t = H.create ~max_nodes:cli.max_nodes ~max_edges:cli.max_edges () in
    let selected =
      List.filter (fun (flag, _, _) -> List.mem flag cli.selected) experiments
    in
    let to_run = if selected = [] then experiments else selected in
    Printf.printf
      "Hector benchmark harness — simulated RTX 3090, paper-scale costs\n\
       (physical replicas: <=%d nodes, <=%d edges per dataset; see DESIGN.md)\n\n"
      cli.max_nodes cli.max_edges;
    List.iter
      (fun (_, title, run) ->
        Printf.printf "==== %s ====\n\n" title;
        run t;
        Printf.printf "\n")
      to_run
  end
