(* Quickstart: compile and run an RGAT layer on a small heterogeneous
   citation graph, inspect the plan, the generated CUDA-like code and the
   simulated device statistics.

   Run with:  dune exec examples/quickstart.exe *)

module Gen = Hector_graph.Generator
module Compiler = Hector_core.Compiler
module Plan = Hector_core.Plan
module Codegen = Hector_core.Codegen
module Session = Hector_runtime.Session
module Engine = Hector_gpu.Engine
module Stats = Hector_gpu.Stats
module Tensor = Hector_tensor.Tensor

let () =
  (* 1. a synthetic heterogeneous graph: 3 node types (author/paper/venue),
     6 relations, ~2k edges *)
  let graph =
    Gen.generate
      {
        Gen.name = "citations";
        num_ntypes = 3;
        num_etypes = 6;
        num_nodes = 500;
        num_edges = 2000;
        compaction_target = 0.5;
        scale = 1.0;
        seed = 42;
      }
  in
  Format.printf "graph: %a@.@." Hector_graph.Hetgraph.pp graph;

  (* 2. the model: single-headed RGAT written in the inter-operator IR *)
  let program = Hector_models.Model_defs.rgat ~in_dim:64 ~out_dim:64 () in
  Format.printf "=== inter-operator IR ===@.%a@.@." Hector_core.Inter_ir.pp_program program;

  (* 3. compile with compact materialization and linear-operator fusion,
     with an observability handle recording pass timings *)
  let obs = Hector_obs.create () in
  let options = Compiler.options_of_flags ~compact:true ~fusion:true () in
  let compiled = Compiler.compile ~obs ~options program in
  Format.printf "=== compiled plan (%d GEMM, %d traversal, %d fused weight products) ===@.%a@.@."
    (Plan.gemm_count compiled.Compiler.forward)
    (Plan.traversal_count compiled.Compiler.forward)
    (List.length compiled.Compiler.weight_ops)
    Plan.pp compiled.Compiler.forward;

  (* 4. the CUDA the code generator would emit *)
  print_endline "=== generated CUDA (excerpt) ===";
  let cuda = Codegen.emit_plan compiled.Compiler.forward in
  String.split_on_char '\n' cuda
  |> List.filteri (fun i _ -> i < 40)
  |> List.iter print_endline;
  print_endline "  ...\n";

  (* 5. run it on the simulated RTX 3090.  Session.Config.t is the primary
     configuration surface; passing the compile-time [obs] handle puts
     compiler passes and plan runs on one timeline. *)
  let config =
    { Session.Config.default with seed = 7; trace = true; observability = Some obs }
  in
  let session = Session.create ~config ~graph compiled in
  let outputs = Session.forward session in
  let out = List.assoc "out" outputs in
  Format.printf "=== execution ===@.output tensor: %a@." Tensor.pp out;
  Format.printf "simulated time: %.3f ms@." (Engine.elapsed_ms (Session.engine session));
  Format.printf "%a@." Stats.pp_breakdown (Engine.stats (Session.engine session));

  (* 6. per-op attribution: simulated time by model operation (sums to the
     simulated clock), plus the wall-clock compiler-pass spans *)
  print_endline "=== per-op simulated time ===";
  Stats.by_op (Engine.stats (Session.engine session))
  |> List.iter (fun (op, e) ->
         Printf.printf "  %-16s %8.3f ms  (%d launches)\n" op e.Stats.time_ms e.Stats.launches);
  print_endline "\n=== metrics snapshot (Session.metrics_json) ===";
  print_endline (Session.metrics_json session)
