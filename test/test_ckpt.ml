(* Tests for the fault-tolerance subsystem: checkpoint format (bitwise
   round-trip, CRC corruption detection, retention), trainer fit/resume
   equivalence, distributed crash recovery via Failover, deterministic
   fault injection in Comms and Serve, the zero-overhead pin when faults
   are off, and crash-safe tuning-db writes. *)

module T = Hector_tensor.Tensor
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Knobs = Hector_runtime.Knobs
module Tuning_db = Hector_runtime.Tuning_db
module Fault = Hector_ckpt.Fault
module Checkpoint = Hector_ckpt.Checkpoint
module Trainer = Hector_ckpt.Trainer
module Comms = Hector_dist.Comms
module Replica = Hector_dist.Replica
module Failover = Hector_dist.Failover
module Serve = Hector_serve.Serve
module Workload = Hector_serve.Workload
module Mg = Hector_stream.Mutable_graph
module Delta = Hector_stream.Delta
module Ss = Hector_stream.Stream_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixtures ---------------------------------------------------------- *)

let parent =
  lazy
    (Gen.generate
       {
         Gen.name = "ckpt_parent";
         num_ntypes = 3;
         num_etypes = 6;
         num_nodes = 160;
         num_edges = 640;
         compaction_target = 0.5;
         scale = 1.0;
         seed = 57;
       })

let serve_parent =
  lazy
    (Gen.generate
       {
         Gen.name = "ckpt_serve";
         num_ntypes = 3;
         num_etypes = 6;
         num_nodes = 160;
         num_edges = 600;
         compaction_target = 0.5;
         scale = 1.0;
         seed = 33;
       })

let features_of graph dim =
  let rng = Rng.create 23 in
  T.randn rng [| graph.G.num_nodes; dim |]

let labels_of graph classes =
  Array.init graph.G.num_nodes (fun v -> (graph.G.node_type.(v) + v) mod classes)

let compile_model ?(training = true) model =
  Compiler.compile
    ~options:(Compiler.options_of_flags ~training ~compact:false ~fusion:false ())
    (Hector_models.Model_defs.by_name model ~in_dim:6 ~out_dim:4 ())

let quiet_comms () = Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ()
let rgcn8 () = Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:4 ()

let max_weight_diff a b =
  List.fold_left
    (fun acc (name, w) ->
      match List.assoc_opt name b with
      | Some w' -> Float.max acc (T.max_abs_diff w w')
      | None -> Alcotest.fail (Printf.sprintf "weight %s missing" name))
    0.0 a

let bitwise_equal_weights a b =
  List.length a = List.length b
  && List.for_all
       (fun (name, w) ->
         match List.assoc_opt name b with
         | None -> false
         | Some w' ->
             let x = T.to_flat_array w and y = T.to_flat_array w' in
             Array.length x = Array.length y
             && Array.for_all2
                  (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
                  x y)
       a

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hector-ckpt-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* putenv + refresh, restoring the knob state afterwards (blank = unset) *)
let with_env bindings f =
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  ignore (Knobs.refresh ());
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, _) -> Unix.putenv k "") bindings;
      ignore (Knobs.refresh ()))
    f

let expect_corrupt label f =
  match f () with
  | _ -> Alcotest.fail (label ^ ": expected Checkpoint.Corrupt")
  | exception Checkpoint.Corrupt _ -> ()

(* --- checkpoint format ------------------------------------------------- *)

let test_roundtrip_bitwise () =
  let rng = Rng.create 5 in
  let tensors =
    [
      ("layer0.w", T.randn rng [| 5; 7 |]);
      ("layer0.b", T.of_array [| 1; 4 |] [| 1e-300; -0.0; Float.pi; -1e300 |]);
      ("layer1.w", T.randn rng [| 3; 2 |]);
    ]
  in
  let ck =
    Checkpoint.create ~model:"rgcn" ~step:17 ~rng:0x1234_5678_9abcL ~epoch:2
      ~graph_version:40
      ~meta:[ ("lr", "0.05"); ("note", "quoted \"x\"\n") ]
      tensors
  in
  let ck' = Checkpoint.decode (Checkpoint.encode ck) in
  Alcotest.(check string) "model" "rgcn" (Checkpoint.model ck');
  check_int "step" 17 (Checkpoint.step ck');
  check_bool "rng cursor" true (Checkpoint.rng ck' = Some 0x1234_5678_9abcL);
  check_int "epoch" 2 (Checkpoint.epoch ck');
  check_int "graph version" 40 (Checkpoint.graph_version ck');
  check_bool "meta round-trips" true
    (List.assoc "note" (Checkpoint.meta ck') = "quoted \"x\"\n");
  check_bool "tensors bitwise equal" true
    (bitwise_equal_weights tensors (Checkpoint.tensors ck'));
  check_bool "shape preserved" true
    (T.shape (Option.get (Checkpoint.tensor ck' "layer0.b")) = [| 1; 4 |])

let test_corruption_detected () =
  let ck =
    Checkpoint.create ~step:1 [ ("w", T.randn (Rng.create 9) [| 4; 4 |]) ]
  in
  let s = Checkpoint.encode ck in
  let nl = String.index s '\n' in
  (* flipped payload byte -> CRC mismatch *)
  let flipped = Bytes.of_string s in
  Bytes.set flipped (nl + 4) (Char.chr (Char.code (Bytes.get flipped (nl + 4)) lxor 0xFF));
  expect_corrupt "payload flip" (fun () -> Checkpoint.decode (Bytes.to_string flipped));
  (* truncated payload *)
  expect_corrupt "truncation" (fun () ->
      Checkpoint.decode (String.sub s 0 (String.length s - 4)));
  (* wrong format tag *)
  expect_corrupt "foreign format" (fun () ->
      Checkpoint.decode "{\"format\":\"zzz\",\"version\":1}\n");
  (* a garbage file loads as Corrupt, never as a half-checkpoint *)
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "junk.hck" in
      Out_channel.with_open_bin path (fun oc -> output_string oc "not a checkpoint");
      expect_corrupt "garbage file" (fun () -> Checkpoint.load path))

let test_save_latest_retention () =
  with_tmp_dir (fun dir ->
      let ck step =
        Checkpoint.create ~step [ ("w", T.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) ]
      in
      (* saves land under [dir] in step order regardless of save order *)
      List.iter (fun s -> ignore (Checkpoint.save ~dir (ck s))) [ 3; 1; 7 ];
      check_bool "list sorted by step" true
        (List.map fst (Checkpoint.list ~dir ()) = [ 1; 3; 7 ]);
      (match Checkpoint.latest ~dir () with
      | Some p -> check_int "latest is newest step" 7 (Checkpoint.step (Checkpoint.load p))
      | None -> Alcotest.fail "latest found nothing");
      (* retention: keep=2 deletes the oldest beyond two *)
      ignore (Checkpoint.save ~dir ~keep:2 (ck 9));
      check_bool "retention keeps 2 newest" true
        (List.map fst (Checkpoint.list ~dir ()) = [ 7; 9 ]);
      check_bool "filename embeds the step" true
        (Filename.basename (Option.get (Checkpoint.latest ~dir ()))
        = Checkpoint.filename 9))

let prop_tensor_roundtrip =
  QCheck.Test.make ~name:"checkpoint encode/decode is bitwise for random tensors"
    ~count:30
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let tensors =
        List.init
          (1 + (seed mod 3))
          (fun i ->
            ( Printf.sprintf "t%d" i,
              T.randn rng [| 1 + ((seed + i) mod 5); 1 + ((seed * 3) mod 7) |] ))
      in
      let ck = Checkpoint.create ~step:(seed mod 50) ~rng:(Int64.of_int seed) tensors in
      let ck' = Checkpoint.decode (Checkpoint.encode ck) in
      bitwise_equal_weights tensors (Checkpoint.tensors ck')
      && Checkpoint.rng ck' = Some (Int64.of_int seed))

(* --- trainer fit / resume ---------------------------------------------- *)

let test_trainer_resume model () =
  let graph = Lazy.force parent in
  let labels = labels_of graph 4 in
  let compiled = compile_model model in
  let base = Trainer.fit ~lr:0.05 ~graph ~labels ~steps:6 compiled in
  check_int "uninterrupted run has 6 losses" 6 (Array.length base.Trainer.losses);
  with_tmp_dir (fun dir ->
      let cut = Trainer.fit ~dir ~every:3 ~lr:0.05 ~graph ~labels ~steps:3 compiled in
      check_bool "interrupted run checkpointed" true (cut.Trainer.checkpoints <> []);
      let res = Trainer.resume ~dir ~lr:0.05 ~graph ~labels ~steps:6 compiled in
      check_int "resumed from step 3" 3 res.Trainer.start_step;
      check_int "resumed run covers the remainder" 3 (Array.length res.Trainer.losses);
      let replay = Array.append cut.Trainer.losses res.Trainer.losses in
      Array.iteri
        (fun i l ->
          check_bool
            (Printf.sprintf "%s loss %d matches uninterrupted (%.2e vs %.2e)" model i
               base.Trainer.losses.(i) l)
            true
            (abs_float (base.Trainer.losses.(i) -. l) <= 1e-6))
        replay;
      check_bool (model ^ " final weights bitwise equal") true
        (bitwise_equal_weights
           (Session.weights base.Trainer.session)
           (Session.weights res.Trainer.session)))

let prop_resume_roundtrip =
  QCheck.Test.make
    ~name:"resume == uninterrupted: bitwise weights, identical tail losses" ~count:6
    QCheck.(make Gen.(pair (int_range 0 1) (int_range 0 4)))
    (fun (model_i, seed_i) ->
      let model = [| "rgcn"; "rgat" |].(model_i) in
      let graph = Lazy.force parent in
      let labels = labels_of graph 4 in
      let compiled = compile_model model in
      let config = { Session.Config.default with Session.Config.seed = 11 + seed_i } in
      with_tmp_dir (fun dir ->
          let full = Trainer.fit ~config ~lr:0.05 ~graph ~labels ~steps:5 compiled in
          let _cut = Trainer.fit ~config ~dir ~every:2 ~lr:0.05 ~graph ~labels ~steps:2 compiled in
          let res = Trainer.resume ~config ~dir ~lr:0.05 ~graph ~labels ~steps:5 compiled in
          res.Trainer.start_step = 2
          && Array.length res.Trainer.losses = 3
          && Array.for_all2
               (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
               (Array.sub full.Trainer.losses 2 3)
               res.Trainer.losses
          && bitwise_equal_weights
               (Session.weights full.Trainer.session)
               (Session.weights res.Trainer.session)))

(* --- distributed resume and crash recovery ----------------------------- *)

let dist_config parts =
  {
    Replica.Config.default with
    Replica.Config.parts = Some parts;
    comms = Some (quiet_comms ());
  }

let test_dist_resume () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let compiled = compile_model "rgcn" in
  List.iter
    (fun parts ->
      let base =
        Failover.train ~config:(dist_config parts) ~lr:0.05 ~features ~graph ~labels
          ~steps:4 compiled
      in
      with_tmp_dir (fun dir ->
          let cut =
            Failover.train ~config:(dist_config parts) ~dir ~every:2 ~lr:0.05 ~features
              ~graph ~labels ~steps:2 compiled
          in
          check_bool "interrupted dist run checkpointed" true
            (cut.Failover.checkpoints <> []);
          let ckpt = Checkpoint.load (Option.get (Checkpoint.latest ~dir ())) in
          check_int "checkpoint carries the step" 2 (Checkpoint.step ckpt);
          (* rebuild a cluster from the checkpoint and replay the rest *)
          let cluster =
            Replica.create ~config:(dist_config parts)
              ~weights:[ Checkpoint.tensors ckpt ] ~features ~graph [ compiled ]
          in
          for step = 3 to 4 do
            let loss = Replica.train_step cluster ~lr:0.05 ~labels () in
            check_bool
              (Printf.sprintf "resumed loss at %d parts, step %d (%.2e vs %.2e)" parts
                 step base.Failover.losses.(step - 1) loss)
              true
              (abs_float (base.Failover.losses.(step - 1) -. loss) <= 1e-6)
          done;
          let d =
            max_weight_diff
              (Replica.weights_of base.Failover.cluster 0)
              (Replica.weights_of cluster 0)
          in
          check_bool
            (Printf.sprintf "resumed weights at %d parts (diff %.2e)" parts d)
            true (d <= 1e-6)))
    [ 1; 2; 4 ]

let crash_baseline =
  lazy
    (let graph = Lazy.force parent in
     Failover.train ~config:(dist_config 4) ~lr:0.05 ~features:(features_of graph 6)
       ~graph ~labels:(labels_of graph 4) ~steps:5 (compile_model "rgcn"))

let run_crash ~crash_step ~replica =
  let graph = Lazy.force parent in
  with_tmp_dir (fun dir ->
      let faults = Fault.create ~crash_at:(crash_step, replica) () in
      let r =
        Failover.train ~config:(dist_config 4) ~faults ~dir ~every:1 ~lr:0.05
          ~features:(features_of graph 6) ~graph ~labels:(labels_of graph 4) ~steps:5
          (compile_model "rgcn")
      in
      (r, faults))

let test_crash_recovery () =
  let base = Lazy.force crash_baseline in
  let r, _faults = run_crash ~crash_step:3 ~replica:1 in
  check_int "recovered run loses no steps" 5 (Array.length r.Failover.losses);
  Array.iteri
    (fun i l ->
      check_bool
        (Printf.sprintf "recovered loss %d on baseline trajectory (%.2e vs %.2e)" i
           base.Failover.losses.(i) l)
        true
        (abs_float (base.Failover.losses.(i) -. l) <= 1e-6))
    r.Failover.losses;
  check_int "survivors re-partitioned" 3 (Replica.parts r.Failover.cluster);
  check_bool "recovery time charged" true (r.Failover.recovery_ms > 0.0);
  let has p = List.exists p r.Failover.events in
  check_bool "crash event recorded" true (has (function Fault.Crashed _ -> true | _ -> false));
  check_bool "detection recorded" true (has (function Fault.Detected _ -> true | _ -> false));
  check_bool "restore recorded" true (has (function Fault.Restored _ -> true | _ -> false));
  let d =
    max_weight_diff
      (Replica.weights_of base.Failover.cluster 0)
      (Replica.weights_of r.Failover.cluster 0)
  in
  check_bool (Printf.sprintf "recovered weights on trajectory (diff %.2e)" d) true
    (d <= 1e-6)

let prop_crash_recovery =
  QCheck.Test.make
    ~name:"crash at any (step, replica) recovers onto the same trajectory" ~count:4
    QCheck.(make Gen.(pair (int_range 1 4) (int_range 0 3)))
    (fun (crash_step, replica) ->
      let base = Lazy.force crash_baseline in
      let r, _ = run_crash ~crash_step ~replica in
      Replica.parts r.Failover.cluster = 3
      && Array.length r.Failover.losses = 5
      && Array.for_all2
           (fun a b -> abs_float (a -. b) <= 1e-6)
           base.Failover.losses r.Failover.losses
      && max_weight_diff
           (Replica.weights_of base.Failover.cluster 0)
           (Replica.weights_of r.Failover.cluster 0)
         <= 1e-6
      && List.exists (function Fault.Restored _ -> true | _ -> false) r.Failover.events)

(* --- deterministic message faults -------------------------------------- *)

let faulted_run seed =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let faults = Fault.create ~seed ~rate:0.3 () in
  let comms = Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ~faults () in
  let cfg =
    { Replica.Config.default with Replica.Config.parts = Some 4; comms = Some comms }
  in
  let cluster = Replica.create ~config:cfg ~features ~graph [ compile_model "rgcn" ] in
  let losses = List.init 2 (fun _ -> Replica.train_step cluster ~lr:0.05 ~labels ()) in
  (Fault.trace faults, Fault.retries faults, losses, cluster)

let test_fault_trace_deterministic () =
  let trace1, retries1, losses1, cluster1 = faulted_run 9 in
  let trace2, retries2, losses2, cluster2 = faulted_run 9 in
  check_bool "some messages dropped under rate 0.3" true (retries1 > 0);
  check_int "same seed, same retry count" retries1 retries2;
  check_bool "same seed, same event trace" true (trace1 = trace2);
  check_bool "same seed, same losses" true (losses1 = losses2);
  check_bool "same seed, bitwise-equal weights" true
    (bitwise_equal_weights (Replica.weights_of cluster1 0) (Replica.weights_of cluster2 0));
  (* faults perturb only the simulated clock, never the numerics *)
  let graph = Lazy.force parent in
  let clean =
    Replica.create ~config:(dist_config 4) ~features:(features_of graph 6) ~graph
      [ compile_model "rgcn" ]
  in
  let labels = labels_of graph 4 in
  ignore (Replica.train_step clean ~lr:0.05 ~labels ());
  ignore (Replica.train_step clean ~lr:0.05 ~labels ());
  check_bool "faults are numerics-neutral" true
    (bitwise_equal_weights (Replica.weights_of clean 0) (Replica.weights_of cluster1 0));
  check_bool "drops and delays cost simulated time" true
    (Replica.elapsed_ms cluster1 > Replica.elapsed_ms clean)

let test_comms_zero_overhead () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let train cfg =
    let cluster = Replica.create ~config:cfg ~features ~graph [ compile_model "rgcn" ] in
    ignore (Replica.train_step cluster ~lr:0.05 ~labels ());
    ignore (Replica.train_step cluster ~lr:0.05 ~labels ());
    cluster
  in
  let plain = train (dist_config 2) in
  let zero_plan = Fault.create ~rate:0.0 () in
  let zero_comms = Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ~faults:zero_plan () in
  let zero =
    train
      { Replica.Config.default with Replica.Config.parts = Some 2; comms = Some zero_comms }
  in
  check_bool "rate-0 plan: identical clock" true
    (Replica.elapsed_ms plain = Replica.elapsed_ms zero);
  check_int "rate-0 plan: identical launches" (Replica.launches plain)
    (Replica.launches zero);
  check_bool "rate-0 plan: bitwise-equal weights" true
    (bitwise_equal_weights (Replica.weights_of plain 0) (Replica.weights_of zero 0));
  check_bool "rate-0 plan: no events" true (Fault.events zero_plan = []);
  check_int "rate-0 plan: no retries" 0 (Fault.retries zero_plan)

(* --- serving under faults ---------------------------------------------- *)

let exact_config ?faults graph =
  {
    Serve.default_config with
    Serve.fanout = Serve.exact_fanout graph;
    hops = 2;
    max_batch = Some 6;
    max_wait_ms = 5.0;
    queue_capacity = Some 64;
    faults;
  }

let strace ?(requests = 12) graph =
  Workload.generate
    ~spec:
      { Workload.default_spec with Workload.requests; rate_rps = 2000.0; seeds_per_request = 3 }
    ~num_nodes:graph.G.num_nodes ()

let outputs_of responses =
  Array.map
    (fun (r : Serve.response) ->
      match r.Serve.output with
      | Some o -> o
      | None -> Alcotest.fail "request unexpectedly shed")
    responses

let max_abs_diff_outputs a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i ai ->
      for r = 0 to T.rows ai - 1 do
        for c = 0 to T.cols ai - 1 do
          d := Float.max !d (abs_float (T.get2 ai r c -. T.get2 b.(i) r c))
        done
      done)
    a;
  !d

let test_serve_retry_then_serve () =
  let graph = Lazy.force serve_parent in
  let requests = strace graph in
  let clean = Serve.create ~config:(exact_config graph) ~graph (rgcn8 ()) in
  let reference = outputs_of (Serve.serve clean requests) in
  let faults = Fault.create ~fail_batches:[ 0 ] () in
  let server = Serve.create ~config:(exact_config ~faults graph) ~graph (rgcn8 ()) in
  let responses = Serve.serve server requests in
  check_int "first micro-batch failed" 1 (Serve.batch_failures server);
  check_int "retry succeeded: nothing shed" 0 (Serve.shed server);
  check_int "nothing shed to the fault path" 0 (Serve.fault_shed server);
  check_int "every request served" (Array.length requests) (Serve.served server);
  let ls = Serve.load_stats server in
  check_int "every request accounted" ls.Serve.requests
    (Serve.served server + Serve.shed server + Serve.rejected server);
  check_bool "retried outputs match the fault-free replica" true
    (max_abs_diff_outputs reference (outputs_of responses) <= 1e-6);
  (match Serve.faults server with
  | Some plan ->
      let has p = List.exists p (Fault.events plan) in
      check_bool "batch failure witnessed" true
        (has (function Fault.Batch_failed _ -> true | _ -> false));
      check_bool "retries witnessed" true
        (has (function Fault.Request_retried _ -> true | _ -> false))
  | None -> Alcotest.fail "server lost its fault plan")

let test_serve_retry_then_shed () =
  let graph = Lazy.force serve_parent in
  let requests = strace graph in
  let faults = Fault.create ~seed:5 ~rate:1.0 () in
  let server = Serve.create ~config:(exact_config ~faults graph) ~graph (rgcn8 ()) in
  let responses = Serve.serve server requests in
  check_int "nothing served when every batch fails" 0 (Serve.served server);
  check_bool "every admitted request shed" true (Serve.shed server > 0);
  check_int "all shedding attributed to faults" (Serve.shed server)
    (Serve.fault_shed server);
  let ls = Serve.load_stats server in
  check_int "degradation never silent: all accounted" ls.Serve.requests
    (Serve.served server + Serve.shed server + Serve.rejected server);
  Array.iter
    (fun (r : Serve.response) ->
      check_bool "shed response carries no output" true (r.Serve.output = None))
    responses;
  check_bool "sheds witnessed in the trace" true
    (List.exists (function Fault.Request_shed _ -> true | _ -> false) (Fault.events faults))

let test_serve_zero_overhead () =
  let graph = Lazy.force serve_parent in
  let requests = strace graph in
  let run faults =
    let server = Serve.create ~config:(exact_config ?faults graph) ~graph (rgcn8 ()) in
    let out = outputs_of (Serve.serve server requests) in
    (server, out)
  in
  let plain, out_plain = run None in
  let zero_plan = Fault.create ~rate:0.0 () in
  let zero, out_zero = run (Some zero_plan) in
  check_bool "rate-0 plan: identical outputs" true
    (max_abs_diff_outputs out_plain out_zero = 0.0);
  check_int "rate-0 plan: identical launches" (Serve.launches plain) (Serve.launches zero);
  check_int "rate-0 plan: no batch failures" 0 (Serve.batch_failures zero);
  check_bool "rate-0 plan: empty trace" true (Fault.events zero_plan = [])

(* --- streaming checkpoint ---------------------------------------------- *)

let test_stream_checkpoint () =
  let g =
    Gen.generate
      {
        Gen.name = "ckpt_stream";
        num_ntypes = 3;
        num_etypes = 6;
        num_nodes = 120;
        num_edges = 420;
        compaction_target = 0.5;
        scale = 1.0;
        seed = 21;
      }
  in
  let features = T.randn (Rng.create 22) [| g.G.num_nodes; 8 |] in
  let mg = Mg.create ~graph:g ~features () in
  let config =
    {
      Serve.default_config with
      Serve.fanout = 8;
      hops = 2;
      max_batch = Some 4;
      max_wait_ms = 5.0;
      queue_capacity = Some 64;
    }
  in
  let ss = Ss.create ~config ~mg (rgcn8 ()) in
  let ck = Ss.checkpoint ss in
  check_int "checkpoint carries the epoch" (Mg.epoch mg) (Checkpoint.epoch ck);
  check_int "checkpoint carries the delta version" (Mg.version mg)
    (Checkpoint.graph_version ck);
  check_bool "checkpoint pins the live weights" true
    (bitwise_equal_weights (Serve.model_weights (Ss.replica ss)) (Checkpoint.tensors ck));
  let d = Delta.generate ~view:(Mg.view mg) ~seed:5 ~ops:6 () in
  (match Ss.apply ss d with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("delta rejected: " ^ e));
  let ck' = Ss.checkpoint ss in
  check_int "version tracks applied deltas" (Mg.version mg) (Checkpoint.graph_version ck');
  check_bool "version advanced" true
    (Checkpoint.graph_version ck' > Checkpoint.graph_version ck)

(* --- knob plumbing ------------------------------------------------------ *)

let test_fault_knobs () =
  check_bool "no fault knobs -> no plan" true (Fault.of_knobs () = None);
  with_env
    [ ("HECTOR_FAULT_RATE", "0.25"); ("HECTOR_FAULT_SEED", "7") ]
    (fun () ->
      match Fault.of_knobs () with
      | Some plan ->
          check_bool "knob rate" true (Fault.rate plan = 0.25);
          check_int "knob seed" 7 (Fault.seed plan)
      | None -> Alcotest.fail "HECTOR_FAULT_* knobs ignored");
  check_bool "cleared knobs -> no plan again" true (Fault.of_knobs () = None)

let test_ckpt_knobs () =
  with_tmp_dir (fun dir ->
      with_env
        [ ("HECTOR_CKPT_DIR", dir); ("HECTOR_CKPT_KEEP", "1") ]
        (fun () ->
          let ck step =
            Checkpoint.create ~step [ ("w", T.of_array [| 1; 2 |] [| 0.5; -0.5 |]) ]
          in
          let p1 = Checkpoint.save (ck 1) in
          check_bool "HECTOR_CKPT_DIR directs the save" true (Filename.dirname p1 = dir);
          ignore (Checkpoint.save (ck 2));
          match Checkpoint.list () with
          | [ (2, p) ] -> check_int "HECTOR_CKPT_KEEP retains one" 2 (Checkpoint.step (Checkpoint.load p))
          | l -> Alcotest.fail (Printf.sprintf "expected 1 checkpoint, found %d" (List.length l))))

(* --- crash-safe tuning-db writes ---------------------------------------- *)

let test_tuning_db_partial_write () =
  with_tmp_dir (fun dir ->
      let g = Lazy.force parent in
      let db = Tuning_db.create () in
      Tuning_db.record db ~model:"fp-ckpt" ~model_name:"rgcn" ~device:"RTX 3090"
        ~training:false
        ~signature:(Tuning_db.signature g)
        ~options:(Compiler.options_of_flags ~training:false ~compact:false ~fusion:false ())
        ~estimated_ms:1.0 ~measured_ms:0.9;
      let path = Filename.concat dir "tuning.json" in
      Tuning_db.save db path;
      (* a crashed writer's leftover temp file never corrupts the db *)
      let stale = path ^ ".stale.tmp" in
      Out_channel.with_open_bin stale (fun oc -> output_string oc "{\"entries\": [tru");
      check_int "db intact beside a stale temp file" 1 (Tuning_db.size (Tuning_db.load path));
      (* the atomic save itself leaves no droppings *)
      check_int "save leaves only db + stale file" 2 (Array.length (Sys.readdir dir));
      (* a torn (half-written) file is never half-loaded: the decoder
         rejects it, and load degrades to an empty db (tuning falls back
         to the cost model rather than trusting a torso) *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let half = String.sub full 0 (String.length full / 2) in
      (match Tuning_db.of_json half with
      | _ -> Alcotest.fail "torn tuning db decoded as if intact"
      | exception Tuning_db.Malformed -> ());
      let torn = Filename.concat dir "torn.json" in
      Out_channel.with_open_bin torn (fun oc -> output_string oc half);
      check_int "torn file loads as empty, not as a torso" 0
        (Tuning_db.size (Tuning_db.load torn));
      (* saving over an existing file replaces it atomically *)
      Tuning_db.record db ~model:"fp-ckpt2" ~model_name:"rgat" ~device:"RTX 3090"
        ~training:true
        ~signature:(Tuning_db.signature g)
        ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
        ~estimated_ms:2.0 ~measured_ms:1.8;
      Tuning_db.save db path;
      check_int "overwrite lands the new generation" 2
        (Tuning_db.size (Tuning_db.load path)))

let suite =
  [
    Alcotest.test_case "checkpoint round-trips bitwise" `Quick test_roundtrip_bitwise;
    Alcotest.test_case "corruption is detected" `Quick test_corruption_detected;
    Alcotest.test_case "save / latest / retention" `Quick test_save_latest_retention;
    Alcotest.test_case "rgcn resume == uninterrupted" `Quick (test_trainer_resume "rgcn");
    Alcotest.test_case "rgat resume == uninterrupted" `Quick (test_trainer_resume "rgat");
    Alcotest.test_case "dist resume exact at 1/2/4 parts" `Quick test_dist_resume;
    Alcotest.test_case "crash recovery replays the trajectory" `Quick test_crash_recovery;
    Alcotest.test_case "fault trace deterministic, numerics-neutral" `Quick
      test_fault_trace_deterministic;
    Alcotest.test_case "rate-0 plan == no plan (comms)" `Quick test_comms_zero_overhead;
    Alcotest.test_case "failed micro-batch retries, then serves" `Quick
      test_serve_retry_then_serve;
    Alcotest.test_case "second failure sheds, witnessed" `Quick test_serve_retry_then_shed;
    Alcotest.test_case "rate-0 plan == no plan (serve)" `Quick test_serve_zero_overhead;
    Alcotest.test_case "stream checkpoint carries epoch/version/weights" `Quick
      test_stream_checkpoint;
    Alcotest.test_case "HECTOR_FAULT_* knobs build the plan" `Quick test_fault_knobs;
    Alcotest.test_case "HECTOR_CKPT_* knobs drive save/retention" `Quick test_ckpt_knobs;
    Alcotest.test_case "tuning db survives partial writes" `Quick
      test_tuning_db_partial_write;
    QCheck_alcotest.to_alcotest prop_tensor_roundtrip;
    QCheck_alcotest.to_alcotest prop_resume_roundtrip;
    QCheck_alcotest.to_alcotest prop_crash_recovery;
  ]
