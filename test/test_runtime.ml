(* End-to-end runtime tests: compiled plans vs naive reference models,
   gradient checks, OOM behaviour, statistics. *)

module T = Hector_tensor.Tensor
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Device = Hector_gpu.Device
module Engine = Hector_gpu.Engine
module Memory = Hector_gpu.Memory
module Stats = Hector_gpu.Stats
module Kernel = Hector_gpu.Kernel
module Ir = Hector_core.Inter_ir
module Compiler = Hector_core.Compiler
module Plan = Hector_core.Plan
module Session = Hector_runtime.Session
module Env = Hector_runtime.Env
module Exec = Hector_runtime.Exec
module Train = Hector_runtime.Train
module Models = Hector_models.Model_defs
module Reference = Hector_models.Reference

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_graph ?(seed = 3) ?(nodes = 60) ?(edges = 200) () =
  Gen.generate
    {
      Gen.name = "t";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = nodes;
      num_edges = edges;
      compaction_target = 0.5;
      scale = 1.0;
      seed;
    }

let configs = [ (false, false); (true, false); (false, true); (true, true) ]

let config_name (c, f) =
  match (c, f) with false, false -> "U" | true, false -> "C" | false, true -> "F" | true, true -> "C+F"

let reference_of session name graph =
  let env = (Session.exec session).Exec.env in
  let inputs =
    List.filter_map
      (fun n -> Option.map (fun (e : Env.entry) -> (n, e.Env.tensor)) (Env.find_opt env n))
      [ "h"; "norm" ]
  in
  Reference.by_name name ~graph ~inputs ~weights:(Session.weights session)

(* --- forward correctness: every model x every configuration --- *)

let test_forward_matches_reference () =
  let graph = test_graph () in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun (compact, fusion) ->
          let options = Compiler.options_of_flags ~compact ~fusion () in
          let compiled = Compiler.compile ~options (build ()) in
          let session = Session.create ~seed:5 ~graph compiled in
          let out = List.assoc "out" (Session.forward session) in
          let expected = reference_of session name graph in
          check_bool
            (Printf.sprintf "%s/%s matches reference" name (config_name (compact, fusion)))
            true
            (T.approx_equal ~tol:1e-4 expected out))
        configs)
    Models.all

let test_forward_idempotent_across_epochs () =
  (* running the same plan twice (persistent buffers, re-zeroed
     accumulators) must give identical outputs *)
  let graph = test_graph () in
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:true ~compact:true ~fusion:true ())
      (Models.rgat ())
  in
  let session = Session.create ~seed:5 ~graph compiled in
  let out1 = List.assoc "out" (Session.forward session) in
  let out2 = List.assoc "out" (Session.forward session) in
  check_bool "identical" true (T.approx_equal ~tol:0.0 out1 out2)

(* --- configurations agree with each other at machine precision --- *)

let test_configs_agree () =
  let graph = test_graph ~seed:17 () in
  List.iter
    (fun (name, build) ->
      let outs =
        List.map
          (fun (compact, fusion) ->
            let options = Compiler.options_of_flags ~compact ~fusion () in
            let compiled = Compiler.compile ~options (build ()) in
            let session = Session.create ~seed:9 ~graph compiled in
            List.assoc "out" (Session.forward session))
          configs
      in
      match outs with
      | base :: rest ->
          List.iteri
            (fun i out ->
              check_bool
                (Printf.sprintf "%s config %d agrees" name (i + 1))
                true
                (T.approx_equal ~tol:1e-6 base out))
            rest
      | [] -> assert false)
    Models.all

(* --- gradient check --- *)

let loss_of compiled graph weights labels =
  let weights = List.map (fun (n, w) -> (n, T.copy w)) weights in
  let s = Session.create ~seed:5 ~weights ~graph compiled in
  let out = List.assoc "out" (Session.forward s) in
  fst (Train.nll_loss ~engine:(Session.engine s) ~out ~labels)

let is_fused_name n = String.length n > 1 && String.equal (String.sub n 0 2) "__"

let test_gradients_match_finite_differences () =
  let graph = test_graph ~nodes:14 ~edges:40 ~seed:11 () in
  let rng = Rng.create 77 in
  List.iter
    (fun (name, _) ->
      List.iter
        (fun (compact, fusion) ->
          let program = Models.by_name name ~in_dim:6 ~out_dim:5 () in
          let options = Compiler.options_of_flags ~training:true ~compact ~fusion () in
          let compiled = Compiler.compile ~options program in
          let session = Session.create ~seed:5 ~graph compiled in
          let labels = Array.init graph.G.num_nodes (fun _ -> Rng.int rng 5) in
          let _ = Session.loss_and_grads session ~labels in
          let grads = Session.weight_grads session in
          let weights = Session.weights session in
          let eps = 1e-4 in
          List.iter
            (fun (wname, w) ->
              if not (is_fused_name wname) then
                match List.assoc_opt wname grads with
                | None -> ()
                | Some g ->
                    for _ = 0 to 2 do
                      let i = Rng.int rng (T.numel w) in
                      let flatw = T.reshape w [| T.numel w |] in
                      let orig = T.get1 flatw i in
                      T.set1 flatw i (orig +. eps);
                      let lp = loss_of compiled graph weights labels in
                      T.set1 flatw i (orig -. eps);
                      let lm = loss_of compiled graph weights labels in
                      T.set1 flatw i orig;
                      let numeric = (lp -. lm) /. (2.0 *. eps) in
                      let analytic = T.get1 (T.reshape g [| T.numel g |]) i in
                      let err =
                        Float.abs (numeric -. analytic) /. Float.max 1.0 (Float.abs numeric)
                      in
                      check_bool
                        (Printf.sprintf "%s/%s grad of %s[%d] err %.2e" name
                           (config_name (compact, fusion)) wname i err)
                        true (err < 2e-3)
                    done)
            weights)
        configs)
    Models.all

let test_training_reduces_loss () =
  let graph = test_graph ~nodes:40 ~edges:150 ~seed:23 () in
  let rng = Rng.create 99 in
  List.iter
    (fun (name, _) ->
      let program = Models.by_name name ~in_dim:8 ~out_dim:4 () in
      let compiled =
        Compiler.compile
          ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
          program
      in
      let session = Session.create ~seed:5 ~graph compiled in
      let labels = Array.init graph.G.num_nodes (fun _ -> Rng.int rng 4) in
      let first = Session.train_step session ~lr:0.5 ~labels () in
      let last = ref first in
      for _ = 1 to 14 do
        last := Session.train_step session ~lr:0.5 ~labels ()
      done;
      check_bool (Printf.sprintf "%s loss decreases (%.4f -> %.4f)" name first !last) true
        (!last < first))
    Models.all

(* --- device behaviour --- *)

let test_stats_shape () =
  let graph = test_graph () in
  (* inter-op fusion off: this pins the per-category launch counts of the
     unfused pipeline (the fused counts are pinned in test_fusion.ml) *)
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~fuse_ops:false ~compact:false ~fusion:false ())
      (Models.rgat ())
  in
  let session = Session.create ~seed:5 ~graph compiled in
  let _ = Session.forward session in
  let stats = Engine.stats (Session.engine session) in
  check_int "two GEMM launches" 2 (Stats.of_category stats Kernel.Gemm).Stats.launches;
  check_int "two traversal launches" 2 (Stats.of_category stats Kernel.Traversal).Stats.launches;
  check_bool "time advanced" true (Engine.elapsed_ms (Session.engine session) > 0.0)

let test_compact_reduces_gemm_work () =
  (* on a graph with heavy (etype, src) sharing, compact materialization
     must reduce GEMM flops *)
  let graph =
    Gen.generate
      {
        Gen.name = "dense";
        num_ntypes = 2;
        num_etypes = 4;
        num_nodes = 50;
        num_edges = 600;
        compaction_target = 0.2;
        scale = 1.0;
        seed = 5;
      }
  in
  let flops_of compact =
    let compiled =
      Compiler.compile ~options:(Compiler.options_of_flags ~compact ~fusion:false ())
        (Models.rgat ())
    in
    let session = Session.create ~seed:5 ~graph compiled in
    let _ = Session.forward session in
    (Stats.of_category (Engine.stats (Session.engine session)) Kernel.Gemm).Stats.flops
  in
  let vanilla = flops_of false and compact = flops_of true in
  check_bool
    (Printf.sprintf "compact %.0f < vanilla %.0f flops" compact vanilla)
    true (compact < 0.5 *. vanilla)

let test_scale_inflates_time_and_memory () =
  let base = test_graph () in
  let scaled =
    G.create ~name:"scaled" ~scale:100.0 ~metagraph:base.G.metagraph ~node_type:base.G.node_type
      ~edges:(Array.init base.G.num_edges (fun i -> (base.G.src.(i), base.G.dst.(i), base.G.etype.(i))))
      ()
  in
  let run graph =
    let compiled =
      Compiler.compile ~options:(Compiler.options_of_flags ~compact:false ~fusion:false ())
        (Models.rgcn ())
    in
    let session = Session.create ~seed:5 ~graph compiled in
    let _ = Session.forward session in
    (Engine.elapsed_ms (Session.engine session), Memory.peak_bytes (Engine.memory (Session.engine session)))
  in
  let t1, m1 = run base in
  let t2, m2 = run scaled in
  (* small physical graphs are launch-overhead bound, so time grows less
     than linearly; work and memory scale exactly *)
  check_bool "time inflated" true (t2 > t1);
  check_bool "memory inflated" true (m2 > 20.0 *. m1)

let test_oom_on_oversized_graph () =
  (* paper-scale vanilla RGAT training on mag- and wikikg2-like graphs must
     exhaust the 24 GB card (Table 5 footnote) *)
  List.iter
    (fun dsname ->
      let info = Hector_graph.Datasets.find dsname in
      let graph = Hector_graph.Datasets.load ~max_nodes:500 ~max_edges:1500 info in
      let compiled =
        Compiler.compile
          ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
          (Models.rgat ())
      in
      check_bool (dsname ^ " raises OOM") true
        (try
           let session = Session.create ~seed:5 ~graph compiled in
           let labels = Array.init graph.G.num_nodes (fun _ -> 0) in
           let _ = Session.train_step session ~labels () in
           false
         with Memory.Out_of_memory _ -> true))
    [ "mag" ]

let test_compact_avoids_oom () =
  (* ...and compact materialization fits (§4.3: mag/wikikg2 RGAT) *)
  List.iter
    (fun dsname ->
      let info = Hector_graph.Datasets.find dsname in
      let graph = Hector_graph.Datasets.load ~max_nodes:500 ~max_edges:1500 info in
      let compiled =
        Compiler.compile
          ~options:(Compiler.options_of_flags ~training:true ~compact:true ~fusion:false ())
          (Models.rgat ())
      in
      let session = Session.create ~seed:5 ~graph compiled in
      let labels = Array.init graph.G.num_nodes (fun _ -> 0) in
      let loss = Session.train_step session ~labels () in
      check_bool (dsname ^ " runs") true (Float.is_finite loss))
    [ "mag"; "wikikg2" ]

(* --- traversal schedule (nodeify) equivalence --- *)

let test_node_gather_strategy_matches () =
  (* the node-gather schedule (prefer_node_gather) must compute the same
     result as the default edge-parallel schedule, on every model *)
  let graph = test_graph ~seed:31 () in
  List.iter
    (fun (name, build) ->
      let run prefer_node_gather =
        let options = { Compiler.default_options with Compiler.prefer_node_gather } in
        let compiled = Compiler.compile ~options (build ()) in
        let session = Session.create ~seed:5 ~graph compiled in
        List.assoc "out" (Session.forward session)
      in
      check_bool (name ^ " schedules agree") true
        (T.approx_equal ~tol:1e-6 (run false) (run true)))
    Models.all

let test_node_gather_no_atomics () =
  let options = { Compiler.default_options with Compiler.prefer_node_gather = true } in
  let compiled = Compiler.compile ~options (Models.rgcn ()) in
  let gather, atomic_edge =
    List.fold_left
      (fun (g, a) step ->
        match step with
        | Plan.Traversal t ->
            ( (g || t.Hector_core.Traversal_spec.strategy = Hector_core.Traversal_spec.Node_gather),
              a || Hector_core.Traversal_spec.has_atomic_updates t )
        | _ -> (g, a))
      (false, false) compiled.Compiler.forward.Plan.steps
  in
  check_bool "node-gather strategy used" true gather;
  check_bool "no atomic traversals remain" false atomic_edge

let test_warp_accumulate_schedule () =
  (* turning off the warp pre-reduction changes cost, never results *)
  let graph = test_graph ~seed:43 () in
  let run warp_accumulate =
    let options =
      {
        (Compiler.options_of_flags ~compact:false ~fusion:false ()) with
        Compiler.traversal_schedule = { Hector_core.Traversal_spec.warp_accumulate };
      }
    in
    let compiled = Compiler.compile ~options (Models.rgat ()) in
    let session = Session.create ~seed:5 ~graph compiled in
    let out = List.assoc "out" (Session.forward session) in
    (out, Engine.elapsed_ms (Session.engine session))
  in
  let out_on, t_on = run true in
  let out_off, t_off = run false in
  check_bool "results identical" true (T.approx_equal ~tol:0.0 out_on out_off);
  check_bool "pre-reduction is cheaper" true (t_on < t_off)

(* --- adjacency encoding (§3.3.5) --- *)

let test_csr_layout_same_outputs_different_cost () =
  let graph = test_graph ~seed:41 () in
  let run adjacency =
    let options =
      {
        (Compiler.options_of_flags ~compact:false ~fusion:false ()) with
        Compiler.layout = { Hector_core.Layout.default with Hector_core.Layout.adjacency };
      }
    in
    let compiled = Compiler.compile ~options (Models.rgat ()) in
    let session = Session.create ~seed:5 ~graph compiled in
    let out = List.assoc "out" (Session.forward session) in
    (out, Engine.elapsed_ms (Session.engine session))
  in
  let out_coo, t_coo = run Hector_core.Layout.Coo in
  let out_csr, t_csr = run Hector_core.Layout.Csr in
  check_bool "outputs identical" true (T.approx_equal ~tol:0.0 out_coo out_csr);
  (* the CSR ownership search costs more per edge than COO subscripts *)
  check_bool "CSR costs more here" true (t_csr > t_coo)

(* --- failure injection --- *)

let test_session_rejects_bad_weight_shape () =
  let graph = test_graph () in
  let compiled =
    Compiler.compile ~options:Compiler.default_options (Models.rgcn ~in_dim:8 ~out_dim:8 ())
  in
  (* W must be [etypes; 8; 8]; hand it garbage *)
  let bad = T.zeros [| 2; 3; 5 |] in
  check_bool "raises" true
    (try
       let session = Session.create ~seed:5 ~weights:[ ("W", bad) ] ~graph compiled in
       ignore (Session.forward session);
       false
     with T.Shape_error _ | Invalid_argument _ -> true)

let test_train_rejects_bad_labels () =
  let graph = test_graph () in
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
      (Models.rgcn ~in_dim:8 ~out_dim:4 ())
  in
  let session = Session.create ~seed:5 ~graph compiled in
  let raises labels =
    try
      ignore (Session.train_step session ~labels ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "label out of class range" true
    (raises (Array.make graph.G.num_nodes 99));
  check_bool "wrong label count" true (raises [| 0; 1 |])

let test_inference_session_rejects_training () =
  let graph = test_graph () in
  let compiled =
    Compiler.compile ~options:Compiler.default_options (Models.rgcn ())
  in
  let session = Session.create ~seed:5 ~graph compiled in
  check_bool "raises" true
    (try
       ignore (Session.train_step session ~labels:(Array.make graph.G.num_nodes 0) ());
       false
     with Invalid_argument _ -> true)

(* --- opaque fallback --- *)

let test_opaque_fallback_executes () =
  let program =
    {
      Ir.name = "with_opaque";
      decls =
        [ Ir.Node_input { name = "h"; dim = 4 }; Ir.Edge_input { name = "s"; dim = 1 } ];
      body =
        [
          Ir.For_each
            ( Ir.Edges,
              [
                Ir.Assign
                  (Ir.Cur_edge, "x", Ir.Opaque ("double", [ Ir.Feature (Ir.Cur_edge, "s") ]));
                Ir.Accumulate (Ir.Dst, "out", Ir.Data (Ir.Cur_edge, "x"));
              ] );
        ];
      outputs = [ "out" ];
    }
  in
  let graph = test_graph () in
  let compiled = Compiler.compile ~options:Compiler.default_options program in
  check_int "fallback step" 1 (Plan.fallback_count compiled.Compiler.forward);
  let engine = Engine.create ~scale:graph.G.scale () in
  let ctx = Hector_runtime.Graph_ctx.create graph in
  let env = Env.create () in
  let s = T.full [| graph.G.num_edges; 1 |] 2.5 in
  Env.add env ~name:"s"
    { Env.tensor = s; space = Hector_core.Materialization.Rows_edges; dim = 1; alloc = None };
  Env.add env ~name:"h"
    {
      Env.tensor = T.zeros [| graph.G.num_nodes; 4 |];
      space = Hector_core.Materialization.Rows_nodes;
      dim = 4;
      alloc = None;
    };
  let exec =
    Exec.create
      ~opaque:
        [
          ( "double",
            fun vals ->
              match vals with
              | [ Exec.Scalar v ] -> Exec.Scalar (2.0 *. v)
              | _ -> invalid_arg "double" );
        ]
      ~engine ~ctx ~env ()
  in
  Exec.run_plan exec compiled.Compiler.forward;
  let out = (Env.find env "out").Env.tensor in
  let expected_total = 2.0 *. 2.5 *. float_of_int graph.G.num_edges in
  check_bool "fallback computed" true (Float.abs (T.sum out -. expected_total) < 1e-6);
  let stats = Engine.stats engine in
  check_bool "fallback launches > 1 per edge op" true
    ((Stats.of_category stats Kernel.Fallback).Stats.launches > 1)

let suite =
  [
    Alcotest.test_case "forward matches reference (12 configs)" `Quick test_forward_matches_reference;
    Alcotest.test_case "forward idempotent across epochs" `Quick test_forward_idempotent_across_epochs;
    Alcotest.test_case "configs agree pairwise" `Quick test_configs_agree;
    Alcotest.test_case "gradients match finite differences" `Slow test_gradients_match_finite_differences;
    Alcotest.test_case "training reduces loss" `Quick test_training_reduces_loss;
    Alcotest.test_case "stats shape" `Quick test_stats_shape;
    Alcotest.test_case "compact reduces GEMM work" `Quick test_compact_reduces_gemm_work;
    Alcotest.test_case "scale inflates time and memory" `Quick test_scale_inflates_time_and_memory;
    Alcotest.test_case "vanilla RGAT OOMs on mag" `Quick test_oom_on_oversized_graph;
    Alcotest.test_case "compact avoids the OOM" `Quick test_compact_avoids_oom;
    Alcotest.test_case "node-gather schedule matches" `Quick test_node_gather_strategy_matches;
    Alcotest.test_case "node-gather used after nodeify" `Quick test_node_gather_no_atomics;
    Alcotest.test_case "CSR layout: same outputs, different cost" `Quick
      test_csr_layout_same_outputs_different_cost;
    Alcotest.test_case "warp-accumulate schedule" `Quick test_warp_accumulate_schedule;
    Alcotest.test_case "session rejects bad weight shape" `Quick test_session_rejects_bad_weight_shape;
    Alcotest.test_case "train rejects bad labels" `Quick test_train_rejects_bad_labels;
    Alcotest.test_case "inference session rejects training" `Quick
      test_inference_session_rejects_training;
    Alcotest.test_case "opaque fallback executes" `Quick test_opaque_fallback_executes;
  ]
