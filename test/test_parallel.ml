(* Multicore backend tests: the domain pool itself, and every parallelized
   kernel cross-checked against the sequential backend (HECTOR_DOMAINS=1
   semantics) on randomized shapes, odd chunk boundaries and empty inputs. *)

module T = Hector_tensor.Tensor
module Dp = Hector_tensor.Domain_pool
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Engine = Hector_gpu.Engine
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Env = Hector_runtime.Env
module Exec = Hector_runtime.Exec
module Models = Hector_models.Model_defs
module Reference = Hector_models.Reference

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Force a pool size for the duration of [f], restoring env/default sizing
   afterwards even on failure. *)
let with_domains n f =
  Dp.set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> Dp.set_num_domains None) f

(* Run [f] sequentially and at several pool sizes; every parallel result
   must be within [tol] of the sequential one ([tol = 0.] for kernels whose
   summation order is identical by construction). *)
let seq_vs_par ?(sizes = [ 2; 4 ]) ~tol name f =
  let expected = with_domains 1 f in
  List.iter
    (fun d ->
      let got = with_domains d f in
      check_bool
        (Printf.sprintf "%s: %d domains within %g of sequential" name d tol)
        true
        (T.max_abs_diff expected got <= tol))
    sizes

(* --- pool sizing ---------------------------------------------------- *)

let test_env_sizing () =
  let saved = Sys.getenv_opt "HECTOR_DOMAINS" in
  (* env knobs are parsed once by Knobs; tests refresh the cached snapshot
     after each putenv to make the change visible *)
  let set v =
    Unix.putenv "HECTOR_DOMAINS" v;
    ignore (Hector_runtime.Knobs.refresh ())
  in
  let restore () = set (Option.value saved ~default:"") in
  Fun.protect ~finally:restore (fun () ->
      set "3";
      check_int "HECTOR_DOMAINS=3" 3 (Dp.num_domains ());
      check_bool "not sequential" false (Dp.sequential ());
      set "1";
      check_int "HECTOR_DOMAINS=1" 1 (Dp.num_domains ());
      check_bool "sequential" true (Dp.sequential ());
      set "1000000";
      check_int "capped at max_domains" Dp.max_domains (Dp.num_domains ());
      (* malformed values now fail loudly instead of silently falling back *)
      Unix.putenv "HECTOR_DOMAINS" "garbage";
      (match Hector_runtime.Knobs.refresh () with
      | _ -> Alcotest.fail "garbage HECTOR_DOMAINS accepted"
      | exception Invalid_argument _ -> ());
      Unix.putenv "HECTOR_DOMAINS" "-2";
      (match Hector_runtime.Knobs.refresh () with
      | _ -> Alcotest.fail "negative HECTOR_DOMAINS accepted"
      | exception Invalid_argument _ -> ());
      set "5";
      with_domains 2 (fun () ->
          check_int "override beats the environment" 2 (Dp.num_domains ())))

(* --- parallel_for --------------------------------------------------- *)

let test_parallel_for_covers_exactly_once () =
  List.iter
    (fun (n, grain) ->
      with_domains 4 (fun () ->
          let hits = Array.make (max n 1) 0 in
          Dp.parallel_for ~grain n (fun lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          Array.iteri
            (fun i h ->
              if i < n then
                check_int (Printf.sprintf "n=%d grain=%d index %d" n grain i) 1 h)
            hits))
    [ (10007, 100); (17, 3); (4096, 4096); (1, 1); (0, 64); (255, 64) ]

let test_parallel_for_propagates_exceptions () =
  with_domains 4 (fun () ->
      check_bool "exception reaches the caller" true
        (try
           Dp.parallel_for ~grain:10 1000 (fun lo _ ->
               if lo > 500 then failwith "chunk failure");
           false
         with Failure _ -> true);
      (* the pool must still be usable afterwards *)
      let count = ref 0 in
      Dp.parallel_for ~grain:1000000 10 (fun lo hi -> count := !count + hi - lo);
      check_int "pool alive after failure" 10 !count)

let test_nested_parallel_for () =
  with_domains 4 (fun () ->
      let out = Array.make 64 0 in
      Dp.parallel_for ~grain:8 64 (fun lo hi ->
          for i = lo to hi - 1 do
            (* nested call: must degrade to the plain loop, not deadlock *)
            let acc = ref 0 in
            Dp.parallel_for ~grain:1 (i + 1) (fun l h -> acc := !acc + h - l);
            out.(i) <- !acc
          done);
      Array.iteri (fun i v -> check_int (Printf.sprintf "inner sum %d" i) (i + 1) v) out)

let test_parallel_for_reduce () =
  let n = 12345 in
  with_domains 4 (fun () ->
      let total =
        Dp.parallel_for_reduce ~grain:97 n
          ~init:(fun () -> 0)
          ~body:(fun acc lo hi ->
            let acc = ref acc in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
          ~merge:( + )
      in
      check_int "sum 0..n-1" (n * (n - 1) / 2) total);
  (* chunk boundaries depend only on (n, grain): any pool size > 1 must give
     bitwise-identical float reductions *)
  let float_sum () =
    Dp.parallel_for_reduce ~grain:64 n
      ~init:(fun () -> 0.0)
      ~body:(fun acc lo hi ->
        let acc = ref acc in
        for i = lo to hi - 1 do
          acc := !acc +. (1.0 /. float_of_int (i + 1))
        done;
        !acc)
      ~merge:( +. )
  in
  let at2 = with_domains 2 float_sum and at4 = with_domains 4 float_sum in
  check_bool "2 and 4 domains bitwise equal" true (Float.equal at2 at4);
  let empty =
    with_domains 4 (fun () ->
        Dp.parallel_for_reduce 0
          ~init:(fun () -> 42)
          ~body:(fun acc _ _ -> acc + 1)
          ~merge:( + ))
  in
  check_int "empty range yields init" 42 empty

(* --- tensor kernels ------------------------------------------------- *)

let test_map_kernels () =
  let rng = Rng.create 7 in
  (* large enough to exceed the element grain, odd sizes, plus empties *)
  List.iter
    (fun shape ->
      let a = T.randn rng shape and b = T.randn rng shape in
      let label r = Printf.sprintf "%s %dx%d" r shape.(0) shape.(1) in
      seq_vs_par ~tol:0.0 (label "map") (fun () -> T.map (fun x -> (2.0 *. x) +. 1.0) a);
      seq_vs_par ~tol:0.0 (label "map2") (fun () -> T.map2 ( *. ) a b);
      seq_vs_par ~tol:0.0 (label "relu") (fun () -> T.relu a);
      seq_vs_par ~tol:0.0 (label "add_inplace") (fun () ->
          let c = T.copy a in
          T.add_inplace c b;
          c);
      seq_vs_par ~tol:0.0 (label "axpy") (fun () ->
          let c = T.copy a in
          T.axpy 0.5 b c;
          c))
    [ [| 123; 177 |]; [| 4096; 5 |]; [| 3; 3 |]; [| 0; 7 |] ]

let test_matmul () =
  let rng = Rng.create 11 in
  (* shapes chosen so the row grain (32768 / row_flops) splits the row range
     into several chunks, plus degenerate cases *)
  List.iter
    (fun (m, k, n) ->
      let a = T.randn rng [| m; k |] and b = T.randn rng [| k; n |] in
      seq_vs_par ~tol:0.0 (Printf.sprintf "matmul %dx%dx%d" m k n) (fun () -> T.matmul a b);
      seq_vs_par ~tol:0.0
        (Printf.sprintf "matmul_into beta %dx%dx%d" m k n)
        (fun () ->
          let c = T.full [| m; n |] 0.25 in
          T.matmul_into ~beta:1.0 a b c;
          c))
    [ (400, 32, 16); (257, 7, 9); (1000, 1, 1); (1, 50, 50); (0, 5, 5) ];
  (* transposed operands follow the same row partitioning *)
  let a = T.randn rng [| 31; 213 |] and b = T.randn rng [| 197; 31 |] in
  seq_vs_par ~tol:0.0 "matmul trans_a/trans_b" (fun () -> T.matmul ~trans_a:true ~trans_b:true a b)

let test_reductions () =
  let rng = Rng.create 13 in
  let a = T.randn rng [| 301; 37 |] and b = T.randn rng [| 301; 37 |] in
  (* flat float reductions reassociate across chunks: compare within 1e-6 *)
  let close name f =
    let expected = with_domains 1 f in
    List.iter
      (fun d ->
        let got = with_domains d f in
        check_bool (Printf.sprintf "%s at %d domains" name d) true
          (Float.abs (expected -. got) <= 1e-6 *. Float.max 1.0 (Float.abs expected)))
      [ 2; 4 ]
  in
  close "sum" (fun () -> T.sum a);
  close "dot" (fun () -> T.dot a b);
  close "mean" (fun () -> T.mean a);
  seq_vs_par ~tol:1e-6 "sum_rows" (fun () -> T.sum_rows a);
  seq_vs_par ~tol:0.0 "sum_cols" (fun () -> T.sum_cols a);
  check_bool "sum of empty" true (with_domains 4 (fun () -> T.sum (T.zeros [| 0; 4 |])) = 0.0)

let test_gather_scatter () =
  let rng = Rng.create 17 in
  let src_rows = 320 and dst_rows = 57 and cols = 33 in
  let m = T.randn rng [| src_rows; cols |] in
  let idx = Array.init 900 (fun _ -> Rng.int rng src_rows) in
  seq_vs_par ~tol:0.0 "gather_rows" (fun () -> T.gather_rows m idx);
  (* accumulating scatter with many duplicate destinations: per-destination
     accumulation order is the source order in both backends *)
  let src = T.randn rng [| 900; cols |] in
  let dup_idx = Array.init 900 (fun _ -> Rng.int rng dst_rows) in
  seq_vs_par ~tol:0.0 "scatter_rows_add duplicates" (fun () ->
      let into = T.zeros [| dst_rows; cols |] in
      T.scatter_rows_add ~into dup_idx src;
      into);
  seq_vs_par ~tol:0.0 "scatter_rows_add empty" (fun () ->
      let into = T.ones [| dst_rows; cols |] in
      T.scatter_rows_add ~into [||] (T.zeros [| 0; cols |]);
      into);
  (* out-of-range indices must still raise under any pool size *)
  with_domains 4 (fun () ->
      check_bool "bad scatter index raises" true
        (try
           T.scatter_rows_add ~into:(T.zeros [| 4; cols |])
             (Array.make 900 99)
             src;
           false
         with Invalid_argument _ | T.Shape_error _ -> true))

let test_random_shapes () =
  (* randomized cross-check sweep: shapes straddle the grain thresholds *)
  let rng = Rng.create 23 in
  for trial = 0 to 9 do
    let m = 1 + Rng.int rng 500
    and k = 1 + Rng.int rng 40
    and n = 1 + Rng.int rng 40 in
    let a = T.randn rng [| m; k |] and b = T.randn rng [| k; n |] in
    seq_vs_par ~tol:0.0 (Printf.sprintf "random matmul #%d (%dx%dx%d)" trial m k n)
      (fun () -> T.matmul a b);
    let c = T.randn rng [| m; k |] in
    seq_vs_par ~tol:0.0 (Printf.sprintf "random map2 #%d" trial) (fun () ->
        T.map2 (fun x y -> x -. (0.3 *. y)) a c)
  done

(* --- traversal + end-to-end models ---------------------------------- *)

let test_graph ?(seed = 3) ?(nodes = 80) ?(edges = 300) () =
  Gen.generate
    {
      Gen.name = "par";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = nodes;
      num_edges = edges;
      compaction_target = 0.5;
      scale = 1.0;
      seed;
    }

let forward_out ~graph ~compact ~fusion name =
  let options = Compiler.options_of_flags ~compact ~fusion () in
  let compiled = Compiler.compile ~options (Models.by_name name ~in_dim:8 ~out_dim:6 ()) in
  let session = Session.create ~seed:5 ~graph compiled in
  List.assoc "out" (Session.forward session)

let test_exec_traversal_matches_sequential () =
  let graph = test_graph () in
  List.iter
    (fun (name, _) ->
      List.iter
        (fun (compact, fusion) ->
          seq_vs_par ~tol:1e-6
            (Printf.sprintf "%s forward (compact=%b fusion=%b)" name compact fusion)
            (fun () -> forward_out ~graph ~compact ~fusion name))
        [ (false, false); (true, true) ])
    Models.all

let test_train_step_matches_sequential () =
  let graph = test_graph ~seed:29 () in
  let labels = Array.init graph.G.num_nodes (fun i -> i mod 4) in
  List.iter
    (fun (name, _) ->
      let losses_and_grads () =
        let compiled =
          Compiler.compile
            ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
            (Models.by_name name ~in_dim:8 ~out_dim:4 ())
        in
        let session = Session.create ~seed:5 ~graph compiled in
        let loss = Session.train_step session ~lr:0.1 ~labels () in
        (loss, Session.weights session)
      in
      let loss1, w1 = with_domains 1 losses_and_grads in
      List.iter
        (fun d ->
          let lossd, wd = with_domains d losses_and_grads in
          check_bool (Printf.sprintf "%s loss at %d domains" name d) true
            (Float.abs (loss1 -. lossd) <= 1e-6);
          List.iter
            (fun (wname, w) ->
              let w' = List.assoc wname wd in
              check_bool
                (Printf.sprintf "%s weight %s after step at %d domains" name wname d)
                true
                (T.max_abs_diff w w' <= 1e-6))
            w1)
        [ 2; 4 ])
    Models.all

let test_reference_models_match_sequential () =
  let graph = test_graph ~seed:41 () in
  List.iter
    (fun (name, build) ->
      let compiled = Compiler.compile ~options:Compiler.default_options (build ()) in
      let session = Session.create ~seed:5 ~graph compiled in
      let env = (Session.exec session).Exec.env in
      let inputs =
        List.filter_map
          (fun n -> Option.map (fun (e : Env.entry) -> (n, e.Env.tensor)) (Env.find_opt env n))
          [ "h"; "norm" ]
      in
      let weights = Session.weights session in
      seq_vs_par ~tol:1e-6 (name ^ " reference") (fun () ->
          Reference.by_name name ~graph ~inputs ~weights))
    Models.all

(* --- JSON escaping (chrome traces and BENCH_micro.json) -------------- *)

let test_json_escape () =
  let check_str = Alcotest.(check string) in
  check_str "plain" "abc" (Engine.json_escape "abc");
  check_str "quote" "a\\\"b" (Engine.json_escape "a\"b");
  check_str "backslash" "a\\\\b" (Engine.json_escape "a\\b");
  check_str "newline+tab" "a\\nb\\tc" (Engine.json_escape "a\nb\tc");
  check_str "control" "x\\u0001y" (Engine.json_escape "x\x01y")

let suite =
  [
    Alcotest.test_case "HECTOR_DOMAINS sizing" `Quick test_env_sizing;
    Alcotest.test_case "parallel_for covers each index once" `Quick
      test_parallel_for_covers_exactly_once;
    Alcotest.test_case "parallel_for propagates exceptions" `Quick
      test_parallel_for_propagates_exceptions;
    Alcotest.test_case "nested parallel_for degrades safely" `Quick test_nested_parallel_for;
    Alcotest.test_case "parallel_for_reduce deterministic" `Quick test_parallel_for_reduce;
    Alcotest.test_case "map kernels match sequential" `Quick test_map_kernels;
    Alcotest.test_case "matmul matches sequential" `Quick test_matmul;
    Alcotest.test_case "reductions match sequential" `Quick test_reductions;
    Alcotest.test_case "gather/scatter match sequential" `Quick test_gather_scatter;
    Alcotest.test_case "randomized shape sweep" `Quick test_random_shapes;
    Alcotest.test_case "compiled forward matches sequential" `Quick
      test_exec_traversal_matches_sequential;
    Alcotest.test_case "train step matches sequential" `Quick test_train_step_matches_sequential;
    Alcotest.test_case "reference models match sequential" `Quick
      test_reference_models_match_sequential;
    Alcotest.test_case "json_escape" `Quick test_json_escape;
  ]
