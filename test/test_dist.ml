(* Tests for the distributed execution subsystem: the typed-edge
   partitioner (qcheck properties), the interconnect cost model, and the
   exactness anchor — partitioned forward/backward must match a
   single-replica session to <= 1e-6 at 1, 2 and 4 partitions. *)

module T = Hector_tensor.Tensor
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Partition = Hector_graph.Partition
module Engine = Hector_gpu.Engine
module Kernel = Hector_gpu.Kernel
module Stats = Hector_gpu.Stats
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Knobs = Hector_runtime.Knobs
module Comms = Hector_dist.Comms
module Replica = Hector_dist.Replica

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let parent =
  lazy
    (Gen.generate
       {
         Gen.name = "dist_parent";
         num_ntypes = 3;
         num_etypes = 6;
         num_nodes = 180;
         num_edges = 720;
         compaction_target = 0.5;
         scale = 1.0;
         seed = 51;
       })

let features_of graph dim =
  let rng = Rng.create 23 in
  T.randn rng [| graph.G.num_nodes; dim |]

let labels_of graph classes =
  Array.init graph.G.num_nodes (fun v -> (graph.G.node_type.(v) + v) mod classes)

let compile_model ?(training = false) ?(compact = false) ?(fusion = false) model =
  Compiler.compile
    ~options:(Compiler.options_of_flags ~training ~compact ~fusion ())
    (Hector_models.Model_defs.by_name model ~in_dim:6 ~out_dim:4 ())

let quiet_comms = Comms.create ~latency_us:5.0 ~bandwidth_gbs:25.0 ()

(* --- partitioner ------------------------------------------------------- *)

let test_partition_covers_graph () =
  let graph = Lazy.force parent in
  let pt = Partition.partition ~parts:3 graph in
  (* every node owned exactly once *)
  let owned_seen = Array.make graph.G.num_nodes 0 in
  Array.iter
    (fun (m : Partition.part) ->
      check_bool "partition non-empty" true (Array.length m.Partition.owned_nodes > 0);
      Array.iter
        (fun i -> owned_seen.(m.Partition.origin_node.(i)) <- owned_seen.(m.Partition.origin_node.(i)) + 1)
        m.Partition.owned_nodes)
    pt.Partition.members;
  Array.iteri (fun v c -> check_int (Printf.sprintf "node %d owned once" v) 1 c) owned_seen;
  (* every edge in exactly one partition, with endpoints preserved *)
  let edge_seen = Array.make graph.G.num_edges 0 in
  Array.iter
    (fun (m : Partition.part) ->
      Array.iteri
        (fun i eid ->
          edge_seen.(eid) <- edge_seen.(eid) + 1;
          check_int "src preserved" graph.G.src.(eid)
            m.Partition.origin_node.(m.Partition.sub.G.src.(i));
          check_int "dst preserved" graph.G.dst.(eid)
            m.Partition.origin_node.(m.Partition.sub.G.dst.(i));
          (* assignment rule: the partition owns the destination *)
          check_bool "dst owned" true m.Partition.owned.(m.Partition.sub.G.dst.(i)))
        m.Partition.origin_edge)
    pt.Partition.members;
  Array.iteri (fun e c -> check_int (Printf.sprintf "edge %d placed once" e) 1 c) edge_seen

let test_partition_halo_maps () =
  let graph = Lazy.force parent in
  let pt = Partition.partition ~parts:4 graph in
  Array.iteri
    (fun p (m : Partition.part) ->
      (* every non-owned local node appears in exactly one halo pair, under
         the peer that owns it, mapped to the peer's matching local row *)
      let halo_of = Array.make m.Partition.sub.G.num_nodes None in
      Array.iter
        (fun (peer, pairs) ->
          check_bool "peer is not self" true (peer <> p);
          Array.iter
            (fun (local, peer_local) ->
              check_bool "halo row not owned" false m.Partition.owned.(local);
              check_bool "no duplicate halo entry" true (halo_of.(local) = None);
              halo_of.(local) <- Some (peer, peer_local);
              let parent_id = m.Partition.origin_node.(local) in
              check_int "peer owns the node" peer pt.Partition.owner.(parent_id);
              let peer_part = pt.Partition.members.(peer) in
              check_int "peer-local row is the same parent node" parent_id
                peer_part.Partition.origin_node.(peer_local))
            pairs)
        m.Partition.halo;
      Array.iteri
        (fun local owned ->
          if not owned then
            check_bool "halo map complete" true (halo_of.(local) <> None))
        m.Partition.owned)
    pt.Partition.members

let prop_partition_every_edge_once =
  QCheck.Test.make ~name:"every edge lands in exactly one partition" ~count:30
    QCheck.(make Gen.(int_range 1 8))
    (fun parts ->
      let graph = Lazy.force parent in
      let pt = Partition.partition ~parts graph in
      let seen = Array.make graph.G.num_edges 0 in
      Array.iter
        (fun (m : Partition.part) ->
          Array.iter (fun eid -> seen.(eid) <- seen.(eid) + 1) m.Partition.origin_edge)
        pt.Partition.members;
      Array.for_all (fun c -> c = 1) seen)

let prop_partition_halo_complete =
  QCheck.Test.make ~name:"halo maps cover every non-owned local node" ~count:30
    QCheck.(make Gen.(int_range 1 8))
    (fun parts ->
      let graph = Lazy.force parent in
      let pt = Partition.partition ~parts graph in
      Array.for_all
        (fun (m : Partition.part) ->
          let covered = Array.make m.Partition.sub.G.num_nodes false in
          Array.iter
            (fun (_, pairs) -> Array.iter (fun (local, _) -> covered.(local) <- true) pairs)
            m.Partition.halo;
          Array.for_all Fun.id
            (Array.mapi (fun local owned -> owned || covered.(local)) m.Partition.owned))
        pt.Partition.members)

let prop_partition_balance =
  QCheck.Test.make ~name:"owned-node counts stay within the configured slack" ~count:30
    QCheck.(make Gen.(pair (int_range 1 8) (int_range 0 4)))
    (fun (parts, slack_tenths) ->
      let graph = Lazy.force parent in
      let slack = float_of_int slack_tenths /. 10.0 in
      let pt = Partition.partition ~slack ~parts graph in
      let n = graph.G.num_nodes in
      let even = (n + parts - 1) / parts in
      let cap =
        max even (int_of_float (floor ((1.0 +. slack) *. float_of_int n /. float_of_int parts)))
      in
      Partition.max_owned pt <= cap)

let prop_partition_deterministic =
  QCheck.Test.make ~name:"partitioning is deterministic" ~count:20
    QCheck.(make Gen.(pair (int_range 1 8) (int_range 0 3)))
    (fun (parts, slack_tenths) ->
      let graph = Lazy.force parent in
      let slack = float_of_int slack_tenths /. 10.0 in
      let a = Partition.partition ~slack ~parts graph in
      let b = Partition.partition ~slack ~parts graph in
      a.Partition.owner = b.Partition.owner
      && a.Partition.cut_edges = b.Partition.cut_edges)

let test_partition_validation () =
  let graph = Lazy.force parent in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "parts 0" true (raises (fun () -> Partition.partition ~parts:0 graph));
  check_bool "too many parts" true
    (raises (fun () -> Partition.partition ~parts:(graph.G.num_nodes + 1) graph));
  check_bool "negative slack" true
    (raises (fun () -> Partition.partition ~slack:(-0.1) ~parts:2 graph))

(* --- interconnect cost model ------------------------------------------ *)

let test_comms_cost_model () =
  let c = Comms.create ~latency_us:10.0 ~bandwidth_gbs:10.0 ~channels:2 () in
  (* 10 us latency + 1 MB over 10 GB/s = 0.01 + 0.1 ms *)
  let ms = Comms.transfer_ms c ~bytes:1e6 in
  check_bool (Printf.sprintf "latency+bandwidth (%.4f)" ms) true (abs_float (ms -. 0.11) < 1e-9);
  let engine = Engine.create () in
  (* the deprecated blocking shim keeps the historic semantics *)
  (Comms.charge [@alert "-deprecated"]) c engine ~op:"halo_exchange" ~messages:2 ~bytes:1e6;
  let st = Engine.stats engine in
  check_int "one comm launch" 1 (Stats.of_op st "halo_exchange").Stats.launches;
  check_bool "comm category charged" true
    ((Stats.of_category st Kernel.Comm).Stats.time_ms > 0.0);
  check_bool "clock advanced by the charge" true
    (abs_float (Engine.elapsed_ms engine -. 0.12) < 1e-9);
  check_bool "attribution covers the clock" true
    (abs_float (Stats.attributed_ms st -. Engine.elapsed_ms engine) < 1e-9)

(* equivalence pin for the API redesign: the deprecated blocking charge is
   exactly a post on channel 0 followed by an immediate wait — same clock,
   same launch count, same per-op and per-category attribution *)
let test_charge_equals_post_wait () =
  let c = Comms.create ~latency_us:10.0 ~bandwidth_gbs:10.0 ~channels:4 () in
  let old_engine = Engine.create () and new_engine = Engine.create () in
  let transfers = [ (2, 1e6); (1, 4e5); (3, 0.0); (0, 5e5) ] in
  List.iter
    (fun (messages, bytes) ->
      (Comms.charge [@alert "-deprecated"]) c old_engine ~op:"halo_exchange" ~messages ~bytes;
      Comms.wait (Comms.post c new_engine ~chan:0 ~op:"halo_exchange" ~messages ~bytes))
    transfers;
  check_bool "clocks identical" true
    (abs_float (Engine.elapsed_ms old_engine -. Engine.elapsed_ms new_engine) < 1e-12);
  let ost = Engine.stats old_engine and nst = Engine.stats new_engine in
  check_int "same launch count" (Stats.of_op ost "halo_exchange").Stats.launches
    (Stats.of_op nst "halo_exchange").Stats.launches;
  check_bool "same per-op time" true
    (abs_float
       ((Stats.of_op ost "halo_exchange").Stats.time_ms
       -. (Stats.of_op nst "halo_exchange").Stats.time_ms)
    < 1e-12);
  check_bool "same Comm-category time" true
    (abs_float
       ((Stats.of_category ost Kernel.Comm).Stats.time_ms
       -. (Stats.of_category nst Kernel.Comm).Stats.time_ms)
    < 1e-12);
  check_bool "both clocks fully attributed" true
    (abs_float (Stats.attributed_ms nst -. Engine.elapsed_ms new_engine) < 1e-9)

(* transfers on distinct channels run concurrently: two 0.101 ms posts at
   clock 0 expose only 0.101 ms, and a third post folded back onto channel
   0 queues behind the first *)
let test_post_channels_overlap () =
  let c = Comms.create ~latency_us:10.0 ~bandwidth_gbs:10.0 ~channels:2 () in
  let engine = Engine.create () in
  let h0 = Comms.post c engine ~chan:0 ~op:"a" ~messages:1 ~bytes:1e6 in
  let h1 = Comms.post c engine ~chan:1 ~op:"b" ~messages:1 ~bytes:1e6 in
  let h2 = Comms.post c engine ~chan:2 ~op:"c" ~messages:1 ~bytes:1e6 in
  check_bool "parallel channels complete together" true
    (abs_float (Comms.completion_ms h0 -. Comms.completion_ms h1) < 1e-12);
  check_bool "chan 2 folds onto channel 0 and queues" true
    (abs_float (Comms.completion_ms h2 -. (2.0 *. Comms.completion_ms h0)) < 1e-12);
  Comms.wait h0;
  Comms.wait h1;
  check_bool "two overlapped transfers expose one duration" true
    (abs_float (Engine.elapsed_ms engine -. 0.11) < 1e-9);
  Comms.wait h2;
  check_bool "queued transfer exposes its remainder" true
    (abs_float (Engine.elapsed_ms engine -. 0.22) < 1e-9);
  check_bool "posted time counts every transfer" true
    (abs_float (Engine.posted_comm_ms engine -. 0.33) < 1e-9);
  check_bool "attribution still covers the clock" true
    (abs_float (Stats.attributed_ms (Engine.stats engine) -. Engine.elapsed_ms engine) < 1e-9)

(* chrome-trace witness: a posted Comm span and a compute span occupy
   overlapping simulated intervals, on different tracks *)
let test_trace_concurrent_comm_span () =
  let c = Comms.create ~latency_us:100.0 ~bandwidth_gbs:1.0 () in
  let engine = Engine.create ~trace:true () in
  let h = Comms.post c engine ~chan:0 ~op:"halo_exchange" ~messages:1 ~bytes:1e7 in
  Engine.launch engine
    (Kernel.make ~name:"gemm" ~category:Kernel.Gemm ~grid_blocks:4096 ~threads_per_block:256
       ~flops:1e9 ~bytes_coalesced:1e6 ());
  Comms.wait h;
  let events = Engine.events engine in
  let comm = List.find (fun (e : Engine.event) -> e.Engine.chan <> None) events in
  let compute = List.find (fun (e : Engine.event) -> e.Engine.chan = None) events in
  check_bool "comm and compute spans overlap in simulated time" true
    (comm.Engine.start_ms < compute.Engine.start_ms +. compute.Engine.duration_ms
    && compute.Engine.start_ms < comm.Engine.start_ms +. comm.Engine.duration_ms);
  let trace = Engine.to_chrome_trace engine in
  check_bool "transfer renders on its own channel track" true (contains trace "\"tid\":2");
  check_bool "compute renders on the compute track" true (contains trace "\"tid\":1")

let test_dist_knobs () =
  let env = function
    | "HECTOR_DIST_PARTS" -> Some "4"
    | "HECTOR_DIST_LATENCY_US" -> Some "2.5"
    | "HECTOR_DIST_BW_GBS" -> Some "100"
    | "HECTOR_DIST_CHANNELS" -> Some "4"
    | "HECTOR_DIST_BUCKET_KB" -> Some "128"
    | "HECTOR_DIST_PIPELINE" -> Some "2"
    | _ -> None
  in
  let k = Knobs.parse env in
  check_bool "parts knob" true (k.Knobs.dist_parts = Some 4);
  check_bool "latency knob" true (k.Knobs.dist_latency_us = Some 2.5);
  check_bool "bandwidth knob" true (k.Knobs.dist_bandwidth_gbs = Some 100.0);
  check_bool "channels knob" true (k.Knobs.dist_channels = Some 4);
  check_bool "bucket knob" true (k.Knobs.dist_bucket_kb = Some 128);
  check_bool "pipeline knob" true (k.Knobs.dist_pipeline = Some 2);
  (* malformed values raise instead of silently falling back *)
  let rejects name v =
    match Knobs.parse (fun n -> if String.equal n name then Some v else None) with
    | _ -> Alcotest.failf "%s=%s accepted" name v
    | exception Invalid_argument msg ->
        check_bool (name ^ " error names the knob") true
          (String.length msg > 6 && String.sub msg 0 6 = "Knobs:")
  in
  rejects "HECTOR_DIST_PARTS" "zero";
  rejects "HECTOR_DIST_LATENCY_US" "-3";
  rejects "HECTOR_DIST_CHANNELS" "0";
  rejects "HECTOR_DIST_BUCKET_KB" "-1";
  rejects "HECTOR_DIST_PIPELINE" "none"

(* --- exactness: partitioned == single-replica -------------------------- *)

let reference_forward graph features master compiled =
  let cfg =
    {
      Session.Config.default with
      Session.Config.seed = 3;
      node_inputs = [ ("h", features) ];
      weights = master;
    }
  in
  let session = Session.create ~config:cfg ~graph compiled in
  match Session.forward session with
  | (_, out) :: _ -> out
  | [] -> Alcotest.fail "reference produced no output"

let test_forward_exact model ~compact ~fusion () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let compiled = compile_model ~compact ~fusion model in
  List.iter
    (fun parts ->
      let cluster =
        Replica.create ~parts ~comms:quiet_comms ~features ~graph [ compiled ]
      in
      let out = Replica.forward cluster in
      let master = List.hd (Replica.master_weights cluster) in
      let reference = reference_forward graph features master compiled in
      let d = T.max_abs_diff out reference in
      check_bool
        (Printf.sprintf "%s forward exact at %d partitions (diff %.2e)" model parts d)
        true (d <= 1e-6))
    [ 1; 2; 4 ]

let test_multilayer_forward_exact () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let layer1 = compile_model "rgcn" in
  let layer2 =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:false ~compact:false ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:4 ~out_dim:3 ())
  in
  List.iter
    (fun parts ->
      let cluster =
        Replica.create ~parts ~comms:quiet_comms ~features ~graph [ layer1; layer2 ]
      in
      let out = Replica.forward cluster in
      let masters = Replica.master_weights cluster in
      let mid = reference_forward graph features (List.nth masters 0) layer1 in
      let reference = reference_forward graph mid (List.nth masters 1) layer2 in
      let d = T.max_abs_diff out reference in
      check_bool
        (Printf.sprintf "two-layer forward exact at %d partitions (diff %.2e)" parts d)
        true (d <= 1e-6))
    [ 1; 2; 4 ]

let max_weight_diff a b =
  List.fold_left
    (fun acc (name, w) ->
      match List.assoc_opt name b with
      | Some w' -> Float.max acc (T.max_abs_diff w w')
      | None -> Alcotest.fail (Printf.sprintf "weight %s missing" name))
    0.0 a

let test_train_exact model ~compact ~fusion () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let compiled = compile_model ~training:true ~compact ~fusion model in
  List.iter
    (fun parts ->
      let cluster =
        Replica.create ~parts ~comms:quiet_comms ~features ~graph [ compiled ]
      in
      let master = List.hd (Replica.master_weights cluster) in
      let cfg =
        {
          Session.Config.default with
          Session.Config.seed = 3;
          node_inputs = [ ("h", features) ];
          weights = List.map (fun (n, w) -> (n, T.copy w)) master;
        }
      in
      let reference = Session.create ~config:cfg ~graph compiled in
      for step = 1 to 3 do
        let loss_d = Replica.train_step cluster ~lr:0.05 ~labels () in
        let loss_r = Session.train_step reference ~lr:0.05 ~labels () in
        check_bool
          (Printf.sprintf "%s loss exact at %d parts, step %d (%.2e vs %.2e)" model parts
             step loss_d loss_r)
          true
          (abs_float (loss_d -. loss_r) <= 1e-6)
      done;
      let d = max_weight_diff (Session.weights reference) (Replica.weights_of cluster 0) in
      check_bool
        (Printf.sprintf "%s weights exact at %d parts (diff %.2e)" model parts d)
        true (d <= 1e-6);
      (* replicas stay bitwise identical: they apply the same summed grads *)
      for p = 1 to parts - 1 do
        check_bool "replicas identical" true
          (max_weight_diff (Replica.weights_of cluster 0) (Replica.weights_of cluster p)
          = 0.0)
      done)
    [ 1; 2; 4 ]

(* --- steady state and attribution -------------------------------------- *)

let test_steady_state_no_alloc () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let compiled = compile_model ~training:true "rgcn" in
  let cluster = Replica.create ~parts:2 ~comms:quiet_comms ~features ~graph [ compiled ] in
  ignore (Replica.train_step cluster ~labels ());
  let warm = Replica.alloc_counts cluster in
  for _ = 1 to 3 do
    ignore (Replica.train_step cluster ~labels ())
  done;
  Alcotest.(check (array int))
    "steady-state epochs allocate no plan buffers" warm (Replica.alloc_counts cluster)

let test_comm_attributed () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let compiled = compile_model ~training:true "rgcn" in
  let cluster = Replica.create ~parts:4 ~comms:quiet_comms ~features ~graph [ compiled ] in
  ignore (Replica.train_step cluster ~labels ());
  let halo = ref 0 and allreduce = ref 0 in
  Array.iter
    (fun engine ->
      let st = Engine.stats engine in
      halo := !halo + (Stats.of_op st "halo_exchange").Stats.launches;
      allreduce := !allreduce + (Stats.of_op st "allreduce").Stats.launches;
      (* the whole-clock attribution invariant holds with comm pseudo-ops *)
      check_bool "attributed_ms covers the clock" true
        (abs_float (Stats.attributed_ms st -. Engine.elapsed_ms engine)
        <= 1e-9 *. Float.max 1.0 (Engine.elapsed_ms engine)))
    (Replica.engines cluster);
  check_bool "halo exchanges charged" true (!halo > 0);
  check_int "one allreduce per replica" 4 !allreduce;
  check_bool "cluster comm time positive" true (Replica.comm_ms cluster > 0.0);
  check_bool "comm below total busy time" true (Replica.comm_ms cluster < Replica.busy_ms cluster);
  let json = Replica.metrics_json cluster in
  check_bool "metrics json mentions comm" true (contains json "comm_ms")

let test_single_partition_has_no_comm () =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let compiled = compile_model "rgcn" in
  let cluster = Replica.create ~parts:1 ~comms:quiet_comms ~features ~graph [ compiled ] in
  ignore (Replica.forward cluster);
  check_bool "no comm at one partition" true (Replica.comm_ms cluster = 0.0)

(* --- the Config record and legacy labels -------------------------------- *)

let test_replica_config () =
  let d = Replica.Config.default in
  check_bool "default parts knob-driven" true (d.Replica.Config.parts = None);
  check_bool "default overlap on" true d.Replica.Config.overlap;
  check_bool "default pipeline knob-driven" true (d.Replica.Config.pipeline = None);
  check_bool "default bucket knob-driven" true (d.Replica.Config.bucket_kb = None);
  check_int "default seed" 1 d.Replica.Config.seed;
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let compiled = compile_model "rgcn" in
  let cfg =
    {
      Replica.Config.default with
      Replica.Config.parts = Some 3;
      comms = Some quiet_comms;
      overlap = false;
      pipeline = Some 2;
    }
  in
  let cluster = Replica.create ~config:cfg ~features ~graph [ compiled ] in
  check_int "config parts honored" 3 (Replica.parts cluster);
  check_bool "config overlap honored" false (Replica.overlap cluster);
  (* pipeline only takes effect with overlap on; depth is still resolved *)
  check_int "config pipeline resolved" 2 (Replica.pipeline_depth cluster);
  (* a legacy label overrides the corresponding config field *)
  let overridden = Replica.create ~config:cfg ~parts:2 ~features ~graph [ compiled ] in
  check_int "legacy label overrides config" 2 (Replica.parts overridden);
  check_bool "default config overlaps" true
    (Replica.overlap (Replica.create ~parts:2 ~comms:quiet_comms ~features ~graph [ compiled ]))

(* --- overlapped / pipelined == BSP -------------------------------------- *)

let make_cluster ~model ~parts ~overlap ~pipeline ~bucket_kb ~features ~graph =
  let compiled = compile_model ~training:true model in
  let cfg =
    {
      Replica.Config.default with
      Replica.Config.parts = Some parts;
      comms = Some quiet_comms;
      overlap;
      pipeline = Some pipeline;
      bucket_kb = Some bucket_kb;
    }
  in
  Replica.create ~config:cfg ~features ~graph [ compiled ]

let prop_overlap_equals_bsp =
  QCheck.Test.make ~name:"overlapped/pipelined training == BSP to 1e-6" ~count:8
    QCheck.(
      make
        Gen.(
          quad (int_range 0 1) (* model *)
            (int_range 0 2) (* parts index *)
            (int_range 1 3) (* pipeline depth *)
            (int_range 0 2) (* bucket index *)))
    (fun (model_i, parts_i, pipeline, bucket_i) ->
      let model = [| "rgcn"; "rgat" |].(model_i) in
      let parts = [| 1; 2; 4 |].(parts_i) in
      let bucket_kb = [| 1; 4; 64 |].(bucket_i) in
      let graph = Lazy.force parent in
      let features = features_of graph 6 in
      let labels = labels_of graph 4 in
      let ov =
        make_cluster ~model ~parts ~overlap:true ~pipeline ~bucket_kb ~features ~graph
      in
      let bsp =
        make_cluster ~model ~parts ~overlap:false ~pipeline:1 ~bucket_kb:64 ~features ~graph
      in
      let losses_close = ref true in
      for _ = 1 to 2 do
        let lo = Replica.train_step ov ~lr:0.05 ~labels () in
        let lb = Replica.train_step bsp ~lr:0.05 ~labels () in
        if abs_float (lo -. lb) > 1e-6 then losses_close := false
      done;
      !losses_close
      && max_weight_diff (Replica.weights_of ov 0) (Replica.weights_of bsp 0) <= 1e-6)

(* --- overlap actually hides transfer time ------------------------------- *)

let comm_ratio ~overlap ~pipeline =
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  let cluster =
    make_cluster ~model:"rgcn" ~parts:4 ~overlap ~pipeline ~bucket_kb:64 ~features ~graph
  in
  ignore (Replica.train_step cluster ~labels ());
  Replica.reset_clocks cluster;
  for _ = 1 to 3 do
    ignore (Replica.train_step cluster ~labels ())
  done;
  (Replica.comm_ms cluster /. Replica.busy_ms cluster, cluster)

let test_overlap_reduces_comm_ratio () =
  let bsp_ratio, _ = comm_ratio ~overlap:false ~pipeline:1 in
  let ov_ratio, ov = comm_ratio ~overlap:true ~pipeline:1 in
  check_bool
    (Printf.sprintf "overlap lowers the comm ratio (%.4f < %.4f)" ov_ratio bsp_ratio)
    true (ov_ratio < bsp_ratio);
  (* the hidden time is visible as posted - exposed *)
  check_bool "overlapped cluster hides transfer time" true
    (Replica.posted_comm_ms ov > Replica.comm_ms ov)

(* --- shared metrics envelope across subsystems -------------------------- *)

let test_metrics_schema_uniform () =
  let envelope_keys = [ "\"subsystem\""; "\"elapsed_ms\""; "\"launches\""; "\"comm\""; "\"overlap_ratio\"" ] in
  let assert_envelope name json =
    List.iter
      (fun key ->
        check_bool (Printf.sprintf "%s metrics has %s" name key) true (contains json key))
      envelope_keys
  in
  let graph = Lazy.force parent in
  let features = features_of graph 6 in
  let labels = labels_of graph 4 in
  (* dist *)
  let cluster =
    make_cluster ~model:"rgcn" ~parts:2 ~overlap:true ~pipeline:1 ~bucket_kb:64 ~features
      ~graph
  in
  ignore (Replica.train_step cluster ~labels ());
  assert_envelope "dist" (Replica.metrics_json cluster);
  check_bool "dist subsystem tag" true
    (contains (Replica.metrics_json cluster) "\"subsystem\":\"dist\"");
  (* session *)
  let compiled = compile_model "rgcn" in
  let cfg =
    { Session.Config.default with Session.Config.node_inputs = [ ("h", features) ] }
  in
  let session = Session.create ~config:cfg ~graph compiled in
  ignore (Session.forward session);
  assert_envelope "session" (Session.metrics_json session);
  check_bool "session subsystem tag" true
    (contains (Session.metrics_json session) "\"subsystem\":\"session\"");
  (* serve *)
  let module Serve = Hector_serve.Serve in
  let module Workload = Hector_serve.Workload in
  let sconfig =
    {
      Serve.default_config with
      Serve.fanout = Serve.exact_fanout graph;
      hops = 2;
      max_batch = Some 4;
      max_wait_ms = 5.0;
      queue_capacity = Some 64;
    }
  in
  let server =
    Serve.create ~config:sconfig ~graph (Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:4 ())
  in
  let requests =
    Workload.generate
      ~spec:{ Workload.default_spec with Workload.requests = 8; seeds_per_request = 2 }
      ~num_nodes:graph.G.num_nodes ()
  in
  ignore (Serve.serve server requests);
  assert_envelope "serve" (Serve.metrics_json server);
  check_bool "serve subsystem tag" true
    (contains (Serve.metrics_json server) "\"subsystem\":\"serve\"")

let suite =
  [
    Alcotest.test_case "partition covers the graph" `Quick test_partition_covers_graph;
    Alcotest.test_case "partition halo maps" `Quick test_partition_halo_maps;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "comms cost model" `Quick test_comms_cost_model;
    Alcotest.test_case "charge == post + wait on channel 0" `Quick test_charge_equals_post_wait;
    Alcotest.test_case "channels overlap transfers" `Quick test_post_channels_overlap;
    Alcotest.test_case "trace shows concurrent comm span" `Quick test_trace_concurrent_comm_span;
    Alcotest.test_case "HECTOR_DIST_* knobs" `Quick test_dist_knobs;
    Alcotest.test_case "Replica.Config record" `Quick test_replica_config;
    Alcotest.test_case "overlap lowers the comm ratio" `Quick test_overlap_reduces_comm_ratio;
    Alcotest.test_case "shared metrics envelope" `Quick test_metrics_schema_uniform;
    Alcotest.test_case "rgcn forward exact at 1/2/4" `Quick
      (test_forward_exact "rgcn" ~compact:false ~fusion:false);
    Alcotest.test_case "rgat forward exact at 1/2/4" `Quick
      (test_forward_exact "rgat" ~compact:true ~fusion:true);
    Alcotest.test_case "two-layer forward exact at 1/2/4" `Quick test_multilayer_forward_exact;
    Alcotest.test_case "rgcn training exact at 1/2/4" `Quick
      (test_train_exact "rgcn" ~compact:false ~fusion:false);
    Alcotest.test_case "rgat training exact at 1/2/4" `Quick
      (test_train_exact "rgat" ~compact:false ~fusion:false);
    Alcotest.test_case "steady-state epochs allocate nothing" `Quick
      test_steady_state_no_alloc;
    Alcotest.test_case "comm time fully attributed" `Quick test_comm_attributed;
    Alcotest.test_case "one partition, no comm" `Quick test_single_partition_has_no_comm;
    QCheck_alcotest.to_alcotest prop_overlap_equals_bsp;
    QCheck_alcotest.to_alcotest prop_partition_every_edge_once;
    QCheck_alcotest.to_alcotest prop_partition_halo_complete;
    QCheck_alcotest.to_alcotest prop_partition_balance;
    QCheck_alcotest.to_alcotest prop_partition_deterministic;
  ]
