(* Entry point of the test suite.  Each substrate and compiler stage
   registers its cases under its own section. *)

let () =
  Alcotest.run "hector"
    [
      ("tensor", Test_tensor.suite);
      ("parallel", Test_parallel.suite);
      ("graph", Test_graph.suite);
      ("gpu", Test_gpu.suite);
      ("core", Test_core.suite);
      ("buffer_plan", Test_buffer_plan.suite);
      ("fusion", Test_fusion.suite);
      ("runtime", Test_runtime.suite);
      ("baselines", Test_baselines.suite);
      ("models", Test_models.suite);
      ("experiments", Test_experiments.suite);
      ("autotune", Test_autotune.suite);
      ("sampler", Test_sampler.suite);
      ("serve", Test_serve.suite);
      ("frontend", Test_frontend.suite);
      ("obs", Test_obs.suite);
      ("dist", Test_dist.suite);
      ("stream", Test_stream.suite);
      ("ckpt", Test_ckpt.suite);
    ]
