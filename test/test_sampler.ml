(* Tests for neighborhood sampling and minibatch training (§6). *)

module T = Hector_tensor.Tensor
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Sampler = Hector_graph.Sampler
module Compiler = Hector_core.Compiler
module Minibatch = Hector_runtime.Minibatch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parent =
  lazy
    (Gen.generate
       {
         Gen.name = "parent";
         num_ntypes = 3;
         num_etypes = 6;
         num_nodes = 400;
         num_edges = 1600;
         compaction_target = 0.5;
         scale = 1.0;
         seed = 21;
       })

let test_block_is_valid_graph () =
  let graph = Lazy.force parent in
  let block = Sampler.sample ~graph ~seeds:[| 0; 10; 50 |] ~fanout:4 ~hops:2 () in
  let sub = block.Sampler.graph in
  (* Hetgraph.create validated invariants; check the mappings *)
  check_int "one origin per node" sub.G.num_nodes (Array.length block.Sampler.origin_node);
  check_int "one origin per edge" sub.G.num_edges (Array.length block.Sampler.origin_edge);
  (* node types survive the renumbering *)
  Array.iteri
    (fun i v -> check_int "ntype preserved" graph.G.node_type.(v) sub.G.node_type.(i))
    block.Sampler.origin_node;
  (* every subgraph edge is the parent edge it claims to be *)
  Array.iteri
    (fun i eid ->
      check_int "etype" graph.G.etype.(eid) sub.G.etype.(i);
      check_int "src" graph.G.src.(eid) block.Sampler.origin_node.(sub.G.src.(i));
      check_int "dst" graph.G.dst.(eid) block.Sampler.origin_node.(sub.G.dst.(i)))
    block.Sampler.origin_edge

let test_seeds_mapped () =
  let graph = Lazy.force parent in
  let seeds = [| 3; 77; 200 |] in
  let block = Sampler.sample ~graph ~seeds ~fanout:3 ~hops:1 () in
  Array.iteri
    (fun i sub_id ->
      check_int "seed maps back" seeds.(i) block.Sampler.origin_node.(sub_id))
    block.Sampler.seed_nodes

let test_fanout_respected () =
  let graph = Lazy.force parent in
  let block = Sampler.sample ~graph ~seeds:[| 5; 9 |] ~fanout:2 ~hops:1 () in
  let sub = block.Sampler.graph in
  (* one hop from two seeds with fanout 2: at most 4 edges *)
  check_bool "edge bound" true (sub.G.num_edges <= 4);
  let din = G.in_degrees sub in
  Array.iter (fun d -> check_bool "per-node fanout" true (d <= 2)) din

let test_hops_grow_block () =
  let graph = Lazy.force parent in
  let one = Sampler.sample ~graph ~seeds:[| 42 |] ~fanout:4 ~hops:1 () in
  let three = Sampler.sample ~graph ~seeds:[| 42 |] ~fanout:4 ~hops:3 () in
  check_bool "more hops, no smaller" true
    (three.Sampler.graph.G.num_nodes >= one.Sampler.graph.G.num_nodes)

let test_sampler_validation () =
  let graph = Lazy.force parent in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "empty seeds" true (raises (fun () -> Sampler.sample ~graph ~seeds:[||] ~fanout:2 ~hops:1 ()));
  check_bool "bad fanout" true
    (raises (fun () -> Sampler.sample ~graph ~seeds:[| 0 |] ~fanout:0 ~hops:1 ()));
  check_bool "seed out of range" true
    (raises (fun () -> Sampler.sample ~graph ~seeds:[| 100000 |] ~fanout:2 ~hops:1 ()))

let test_sampler_deterministic () =
  let graph = Lazy.force parent in
  let a = Sampler.sample ~seed:4 ~graph ~seeds:[| 1; 2 |] ~fanout:3 ~hops:2 () in
  let b = Sampler.sample ~seed:4 ~graph ~seeds:[| 1; 2 |] ~fanout:3 ~hops:2 () in
  check_bool "same block" true (a.Sampler.origin_edge = b.Sampler.origin_edge)

(* --- minibatch training --- *)

let test_minibatch_step_report () =
  let graph = Lazy.force parent in
  let rng = Rng.create 5 in
  let features = T.randn rng [| graph.G.num_nodes; 8 |] in
  let labels = Array.init graph.G.num_nodes (fun v -> graph.G.node_type.(v)) in
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:3 ())
  in
  let trainer = Minibatch.create ~graph ~features ~labels compiled in
  let report = Minibatch.step trainer ~batch:[| 0; 1; 2; 3 |] () in
  check_bool "loss finite" true (Float.is_finite report.Minibatch.loss);
  check_bool "block nonempty" true (report.Minibatch.block_nodes > 0);
  check_bool "transfer charged" true (report.Minibatch.transfer_ms > 0.0);
  check_bool "compute charged" true (report.Minibatch.compute_ms > 0.0)

let test_minibatch_learns () =
  (* labels = node type (mod classes): learnable signal through typed
     message passing; minibatch SGD over blocks must reduce the loss *)
  let graph = Lazy.force parent in
  let rng = Rng.create 11 in
  let classes = 3 in
  let labels = Array.init graph.G.num_nodes (fun v -> graph.G.node_type.(v) mod classes) in
  let features =
    T.init [| graph.G.num_nodes; 8 |] (fun idx ->
        (if idx.(1) = labels.(idx.(0)) then 1.0 else 0.0) +. (0.3 *. Rng.gaussian rng))
  in
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:true ~compact:true ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:classes ())
  in
  let trainer = Minibatch.create ~graph ~features ~labels compiled in
  let first = Minibatch.train_epochs trainer ~lr:0.3 ~batch_size:80 ~epochs:1 () in
  let last = Minibatch.train_epochs trainer ~lr:0.3 ~batch_size:80 ~epochs:4 () in
  check_bool (Printf.sprintf "loss decreases (%.3f -> %.3f)" first last) true (last < first)

let test_minibatch_requires_training () =
  let graph = Lazy.force parent in
  let features = T.zeros [| graph.G.num_nodes; 8 |] in
  let labels = Array.make graph.G.num_nodes 0 in
  let compiled =
    Compiler.compile ~options:Compiler.default_options
      (Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:3 ())
  in
  check_bool "raises" true
    (try
       ignore (Minibatch.create ~graph ~features ~labels compiled);
       false
     with Invalid_argument _ -> true)

let test_sample_union_maps_each_request () =
  let graph = Lazy.force parent in
  let seed_sets = [| [| 3; 77 |]; [| 77; 200; 9 |]; [| 3 |] |] in
  let sub, block_sets =
    Sampler.sample_union ~graph ~seed_sets ~fanout:4 ~hops:2 ()
  in
  check_int "one block id set per request" (Array.length seed_sets) (Array.length block_sets);
  Array.iteri
    (fun k ids ->
      check_int "request arity preserved" (Array.length seed_sets.(k)) (Array.length ids);
      Array.iteri
        (fun j id -> check_int "block id maps to the request's seed" seed_sets.(k).(j)
            sub.Sampler.origin_node.(id))
        ids)
    block_sets;
  (* the union block's seeds are exactly the distinct seeds, in order *)
  check_bool "union seeds" true
    (Array.map (fun id -> sub.Sampler.origin_node.(id)) sub.Sampler.seed_nodes
     = [| 3; 77; 200; 9 |])

let test_minibatch_same_seed_same_losses () =
  let graph = Lazy.force parent in
  let rng = Rng.create 5 in
  let features = T.randn rng [| graph.G.num_nodes; 8 |] in
  let labels = Array.init graph.G.num_nodes (fun v -> graph.G.node_type.(v)) in
  let compiled =
    Compiler.compile
      ~options:(Compiler.options_of_flags ~training:true ~compact:false ~fusion:false ())
      (Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:3 ())
  in
  let run seed =
    let trainer = Minibatch.create ~seed ~graph ~features ~labels compiled in
    List.init 3 (fun _ ->
        Minibatch.train_epochs trainer ~lr:0.1 ~batch_size:100 ~epochs:1 ())
  in
  let a = run 7 and b = run 7 in
  check_bool "same seed, identical losses" true (a = b);
  List.iter (fun l -> check_bool "finite" true (Float.is_finite l)) a

(* --- property tests --- *)

(* two distinct in-range seed nodes derived from one generated id *)
let distinct_seeds v = [| v; (v + 137) mod 400 |]

let prop_fanout_bound_per_hop =
  QCheck.Test.make ~name:"block in-degrees never exceed the fanout" ~count:40
    QCheck.(make Gen.(triple (int_range 0 399) (int_range 1 6) (int_range 1 3)))
    (fun (v, fanout, hops) ->
      let graph = Lazy.force parent in
      let block = Sampler.sample ~graph ~seeds:(distinct_seeds v) ~fanout ~hops () in
      (* a node joins the frontier at most once, so it draws in-edges in at
         most one hop: every in-degree of the block is bounded by fanout *)
      Array.for_all (fun d -> d <= fanout) (G.in_degrees block.Sampler.graph))

let prop_subgraph_valid =
  QCheck.Test.make ~name:"sampled subgraph upholds the Hetgraph invariants" ~count:40
    QCheck.(make Gen.(pair (int_range 0 399) (int_range 1 3)))
    (fun (v, hops) ->
      let graph = Lazy.force parent in
      let block = Sampler.sample ~graph ~seeds:(distinct_seeds v) ~fanout:4 ~hops () in
      let sub = block.Sampler.graph in
      let sorted a = Array.for_all (fun i -> a.(i) <= a.(i + 1))
          (Array.init (max 0 (Array.length a - 1)) (fun i -> i)) in
      sorted sub.G.node_type && sorted sub.G.etype
      && Array.for_all
           (fun i ->
             graph.G.node_type.(block.Sampler.origin_node.(sub.G.src.(i)))
             = sub.G.node_type.(sub.G.src.(i)))
           (Array.init sub.G.num_edges (fun i -> i)))

let prop_origin_ids_valid =
  QCheck.Test.make ~name:"origin_node/origin_edge are valid parent ids" ~count:40
    QCheck.(make Gen.(pair (int_range 0 399) (int_range 1 3)))
    (fun (v, hops) ->
      let graph = Lazy.force parent in
      let block = Sampler.sample ~graph ~seeds:(distinct_seeds v) ~fanout:5 ~hops () in
      Array.for_all (fun p -> p >= 0 && p < graph.G.num_nodes) block.Sampler.origin_node
      && Array.for_all (fun e -> e >= 0 && e < graph.G.num_edges) block.Sampler.origin_edge
      && Array.for_all
           (fun s -> s >= 0 && s < block.Sampler.graph.G.num_nodes)
           block.Sampler.seed_nodes)

let prop_sample_domain_invariant =
  QCheck.Test.make ~name:"sampling is identical across 1/2/4 domains" ~count:15
    QCheck.(make Gen.(pair (int_range 0 399) (int_range 1 3)))
    (fun (v, hops) ->
      let graph = Lazy.force parent in
      let with_domains n f =
        Hector_tensor.Domain_pool.set_num_domains (Some n);
        Fun.protect ~finally:(fun () -> Hector_tensor.Domain_pool.set_num_domains None) f
      in
      let run () =
        let b = Sampler.sample ~seed:9 ~graph ~seeds:(distinct_seeds v) ~fanout:3 ~hops () in
        (b.Sampler.origin_node, b.Sampler.origin_edge, b.Sampler.seed_nodes)
      in
      let reference = with_domains 1 run in
      List.for_all (fun d -> with_domains d run = reference) [ 2; 4 ])

let prop_block_edges_subset =
  QCheck.Test.make ~name:"sampled blocks are consistent subgraphs" ~count:30
    QCheck.(make Gen.(pair (int_range 0 399) (int_range 1 3)))
    (fun (seed_node, hops) ->
      let graph = Lazy.force parent in
      let block = Sampler.sample ~graph ~seeds:[| seed_node |] ~fanout:5 ~hops () in
      let sub = block.Sampler.graph in
      let ok = ref true in
      Array.iteri
        (fun i eid ->
          if
            graph.G.src.(eid) <> block.Sampler.origin_node.(sub.G.src.(i))
            || graph.G.dst.(eid) <> block.Sampler.origin_node.(sub.G.dst.(i))
          then ok := false)
        block.Sampler.origin_edge;
      !ok)

let suite =
  [
    Alcotest.test_case "block is a valid graph" `Quick test_block_is_valid_graph;
    Alcotest.test_case "seeds mapped" `Quick test_seeds_mapped;
    Alcotest.test_case "fanout respected" `Quick test_fanout_respected;
    Alcotest.test_case "hops grow the block" `Quick test_hops_grow_block;
    Alcotest.test_case "sampler validation" `Quick test_sampler_validation;
    Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
    Alcotest.test_case "minibatch step report" `Quick test_minibatch_step_report;
    Alcotest.test_case "minibatch learns" `Quick test_minibatch_learns;
    Alcotest.test_case "minibatch requires training" `Quick test_minibatch_requires_training;
    Alcotest.test_case "sample_union maps each request" `Quick test_sample_union_maps_each_request;
    Alcotest.test_case "minibatch same seed, same losses" `Quick
      test_minibatch_same_seed_same_losses;
    QCheck_alcotest.to_alcotest prop_block_edges_subset;
    QCheck_alcotest.to_alcotest prop_fanout_bound_per_hop;
    QCheck_alcotest.to_alcotest prop_subgraph_valid;
    QCheck_alcotest.to_alcotest prop_origin_ids_valid;
    QCheck_alcotest.to_alcotest prop_sample_domain_invariant;
  ]
