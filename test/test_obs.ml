(* Observability subsystem tests: span/counter collection, the whole-clock
   per-op attribution invariant, zero-allocation disabled handles, the
   Session.Config / legacy-label equivalence, and Knobs parsing. *)

module T = Hector_tensor.Tensor
module Domain_pool = Hector_tensor.Domain_pool
module Gen = Hector_graph.Generator
module Engine = Hector_gpu.Engine
module Stats = Hector_gpu.Stats
module Kernel = Hector_gpu.Kernel
module Obs = Hector_obs
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Knobs = Hector_runtime.Knobs
module Models = Hector_models.Model_defs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_graph ?(seed = 3) ?(nodes = 60) ?(edges = 200) () =
  Gen.generate
    {
      Gen.name = "t";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = nodes;
      num_edges = edges;
      compaction_target = 0.5;
      scale = 1.0;
      seed;
    }

let train_options = Compiler.options_of_flags ~training:true ~compact:true ~fusion:true ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- spans and counters ------------------------------------------- *)

let test_span_nesting () =
  let obs = Obs.create () in
  Obs.time obs ~kind:"pass" "outer" (fun () ->
      Obs.time obs ~kind:"pass" "inner_a" (fun () -> ());
      Obs.time obs ~kind:"run" "inner_b" (fun () -> ()));
  Obs.time obs ~kind:"run" "second" (fun () -> ());
  match Obs.spans obs with
  | [ outer; second ] ->
      check_string "first root" "outer" outer.Obs.name;
      check_string "second root" "second" second.Obs.name;
      check_string "second kind" "run" second.Obs.kind;
      (match outer.Obs.children with
      | [ a; b ] ->
          check_string "child order chronological" "inner_a" a.Obs.name;
          check_string "second child" "inner_b" b.Obs.name;
          check_bool "children nested within parent" true
            (a.Obs.start_ms >= outer.Obs.start_ms
            && b.Obs.start_ms +. b.Obs.duration_ms
               <= outer.Obs.start_ms +. outer.Obs.duration_ms +. 1e-3)
      | l -> Alcotest.failf "expected two children, got %d" (List.length l));
      check_bool "roots chronological" true (outer.Obs.start_ms <= second.Obs.start_ms)
  | l -> Alcotest.failf "expected two roots, got %d" (List.length l)

let test_span_exception_safety () =
  let obs = Obs.create () in
  (try Obs.time obs ~kind:"pass" "boom" (fun () -> failwith "no") with Failure _ -> ());
  Obs.time obs ~kind:"pass" "after" (fun () -> ());
  match Obs.spans obs with
  | [ boom; after ] ->
      check_string "failed span recorded" "boom" boom.Obs.name;
      check_string "next span is a sibling, not a child" "after" after.Obs.name;
      check_int "no stray children" 0 (List.length after.Obs.children)
  | l -> Alcotest.failf "expected two roots, got %d" (List.length l)

let test_counters () =
  let obs = Obs.create () in
  Obs.add obs "launches" 3;
  Obs.add obs "launches" 2;
  Obs.add obs "syncs" 1;
  check_int "accumulated" 5 (Obs.counter obs "launches");
  check_int "independent" 1 (Obs.counter obs "syncs");
  check_int "unknown is zero" 0 (Obs.counter obs "nope");
  check_bool "sorted assoc" true (Obs.counters obs = [ ("launches", 5); ("syncs", 1) ]);
  Obs.reset obs;
  check_int "reset clears" 0 (Obs.counter obs "launches");
  check_int "reset clears spans" 0 (List.length (Obs.spans obs))

let test_disabled_no_allocation () =
  (* The disabled handle must be branch-only on the hot path: no minor
     allocation per call. *)
  let obs = Obs.disabled in
  check_bool "disabled" true (not (Obs.enabled obs));
  (* Warm up (first calls may allocate closures etc. once). *)
  for _ = 1 to 100 do
    Obs.add obs "x" 1
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.add obs "x" 1
  done;
  let after = Gc.minor_words () in
  let per_call = (after -. before) /. 10_000.0 in
  check_bool
    (Printf.sprintf "Obs.add on disabled handle allocates (%.3f words/call)" per_call)
    true (per_call < 0.01);
  check_int "nothing recorded" 0 (Obs.counter obs "x")

(* --- engine integration: attribution invariant -------------------- *)

let sum_by_op stats = List.fold_left (fun acc (_, e) -> acc +. e.Stats.time_ms) 0.0 (Stats.by_op stats)

let check_attribution_total name engine =
  let elapsed = Engine.elapsed_ms engine in
  let attributed = Stats.attributed_ms (Engine.stats engine) in
  let summed = sum_by_op (Engine.stats engine) in
  check_bool (name ^ ": clock advanced") true (elapsed > 0.0);
  let rel a b = Float.abs (a -. b) /. Float.max 1e-9 (Float.abs b) in
  check_bool
    (Printf.sprintf "%s: attributed (%.6f) covers elapsed (%.6f)" name attributed elapsed)
    true
    (rel attributed elapsed < 1e-9);
  check_bool (name ^ ": by_op sums to attributed") true (rel summed attributed < 1e-9)

let test_attribution_rgcn_train () =
  let graph = test_graph () in
  let compiled = Compiler.compile ~options:train_options (Models.rgcn ()) in
  let session = Session.create ~config:Session.Config.default ~graph compiled in
  Session.reset_clock session;
  let labels = Array.make 60 0 in
  let _loss = Session.train_step session ~labels () in
  check_attribution_total "rgcn train" (Session.engine session);
  (* every op row is a real name: nothing fell through to unattributed *)
  let ops = List.map fst (Stats.by_op (Engine.stats (Session.engine session))) in
  check_bool "no unattributed launches" true (not (List.mem Kernel.unattributed ops));
  check_bool "loss pseudo-op present" true (List.mem "loss" ops);
  check_bool "sgd pseudo-op present" true (List.mem "sgd" ops)

let test_attribution_with_host_sync () =
  let engine = Engine.create () in
  Engine.launch engine
    (Kernel.make ~provenance:(Kernel.provenance ~origin:"test" "gemm") ~category:Kernel.Gemm
       ~name:"k" ~flops:1e9 ~bytes_coalesced:1e6 ());
  Engine.host_sync engine ();
  Engine.launch engine
    (Kernel.make ~category:Kernel.Traversal ~name:"plain" ~flops:1e6 ~bytes_gathered:1e6 ());
  Engine.host_sync engine ~us:42.0 ();
  check_attribution_total "manual syncs" engine;
  let stats = Engine.stats engine in
  check_bool "sync op recorded" true ((Stats.of_op stats Stats.sync_op).Stats.time_ms > 0.0);
  check_int "sync not a launch" 0 (Stats.of_op stats Stats.sync_op).Stats.launches;
  check_bool "untagged launch lands on unattributed" true
    ((Stats.of_op stats Kernel.unattributed).Stats.time_ms > 0.0)

(* --- engine obs counters and reset behaviour ---------------------- *)

let test_engine_obs_counters () =
  let obs = Obs.create () in
  let engine = Engine.create ~obs () in
  Engine.launch engine (Kernel.make ~category:Kernel.Gemm ~name:"k" ~flops:1e9 ~bytes_coalesced:1e6 ());
  Engine.launch engine (Kernel.make ~category:Kernel.Gemm ~name:"k" ~flops:1e9 ~bytes_coalesced:1e6 ());
  Engine.host_sync engine ();
  check_int "launch counter" 2 (Obs.counter obs "engine.launches");
  check_int "sync counter" 1 (Obs.counter obs "engine.host_syncs")

let test_reset_clock_keep_events () =
  let engine = Engine.create ~trace:true () in
  Engine.launch engine (Kernel.make ~category:Kernel.Gemm ~name:"a" ~flops:1e9 ~bytes_coalesced:1e6 ());
  check_int "one event" 1 (List.length (Engine.events engine));
  Engine.reset_clock ~keep_events:true engine;
  check_bool "clock zeroed" true (Engine.elapsed_ms engine = 0.0);
  check_int "events kept" 1 (List.length (Engine.events engine));
  Engine.launch engine (Kernel.make ~category:Kernel.Gemm ~name:"b" ~flops:1e9 ~bytes_coalesced:1e6 ());
  check_int "timeline accumulates" 2 (List.length (Engine.events engine));
  Engine.reset_clock engine;
  check_int "default reset drops events" 0 (List.length (Engine.events engine))

(* --- Config vs legacy labels: identical behaviour ----------------- *)

let test_config_equals_legacy () =
  let graph = test_graph () in
  let compiled = Compiler.compile ~options:train_options (Models.rgcn ()) in
  let legacy = Session.create ~seed:7 ~trace:true ~graph compiled in
  let config =
    Session.create
      ~config:{ Session.Config.default with seed = 7; trace = true }
      ~graph compiled
  in
  let labels = Array.make 60 1 in
  let loss_l = Session.train_step legacy ~labels () in
  let loss_c = Session.train_step config ~labels () in
  check_bool "identical loss" true (Float.abs (loss_l -. loss_c) < 1e-12);
  let names s = List.map (fun (e : Engine.event) -> e.Engine.name) (Engine.events (Session.engine s)) in
  check_bool "non-empty launch sequence" true (names legacy <> []);
  check_bool "identical launch sequences" true (names legacy = names config);
  check_bool "identical simulated time" true
    (Engine.elapsed_ms (Session.engine legacy) = Engine.elapsed_ms (Session.engine config))

let test_label_overrides_config () =
  let graph = test_graph () in
  let compiled = Compiler.compile ~options:train_options (Models.rgcn ()) in
  (* config says no trace; the legacy label flips it on *)
  let s =
    Session.create ~config:{ Session.Config.default with trace = false } ~trace:true ~graph compiled
  in
  let labels = Array.make 60 0 in
  let _ = Session.train_step s ~labels () in
  check_bool "label wins over config" true (Engine.events (Session.engine s) <> [])

let test_session_observability_config () =
  let graph = test_graph () in
  let obs = Obs.create () in
  let compiled = Compiler.compile ~obs ~options:train_options (Models.rgcn ()) in
  check_bool "compile spans recorded" true
    (List.exists (fun s -> s.Obs.name = "compile") (Obs.spans obs));
  let session =
    Session.create
      ~config:{ Session.Config.default with observability = Some obs }
      ~graph compiled
  in
  check_bool "session reports to configured handle" true (Session.obs session == obs);
  let labels = Array.make 60 0 in
  let _ = Session.train_step session ~labels () in
  check_bool "run spans recorded" true
    (List.exists
       (fun s -> String.length s.Obs.name >= 8 && String.sub s.Obs.name 0 8 = "run_plan")
       (Obs.spans obs));
  check_bool "launch counter advanced" true (Obs.counter obs "engine.launches" > 0);
  let metrics = Session.metrics_json session in
  check_bool "metrics include spans" true
    (String.length metrics > 0
    && contains metrics "\"spans\""
    && contains metrics "\"by_op\"")

(* --- metrics / trace export --------------------------------------- *)

let test_provenance_in_trace () =
  let graph = test_graph () in
  let compiled = Compiler.compile ~options:train_options (Models.rgcn ()) in
  let session =
    Session.create ~config:{ Session.Config.default with trace = true } ~graph compiled
  in
  let labels = Array.make 60 0 in
  let _ = Session.train_step session ~labels () in
  let events = Engine.events (Session.engine session) in
  check_bool "every launch carries provenance" true
    (events <> [] && List.for_all (fun (e : Engine.event) -> e.Engine.prov <> None) events);
  let trace = Session.chrome_trace session in
  check_bool "trace has provenance args" true (contains trace "\"origin\"")

(* --- knob parsing -------------------------------------------------- *)

let getenv_of assoc name = List.assoc_opt name assoc

let test_knobs_parse () =
  let p assoc = Knobs.parse (getenv_of assoc) in
  check_bool "empty env gives defaults" true (p [] = Knobs.defaults);
  check_bool "defaults: arena on, obs off, domains unset" true
    (Knobs.defaults.Knobs.arena && (not Knobs.defaults.Knobs.obs)
    && Knobs.defaults.Knobs.domains = None);
  check_bool "domains parsed" true ((p [ ("HECTOR_DOMAINS", "3") ]).Knobs.domains = Some 3);
  check_bool "domains capped" true
    ((p [ ("HECTOR_DOMAINS", "100000") ]).Knobs.domains = Some Domain_pool.max_domains);
  (* malformed values raise with a clear message instead of silently
     falling back — a typo'd knob must not be ignored *)
  let rejects name assoc =
    match p assoc with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument msg ->
        check_bool (name ^ " error names the knob") true
          (String.length msg > 6 && String.sub msg 0 6 = "Knobs:")
  in
  rejects "domains invalid" [ ("HECTOR_DOMAINS", "zero") ];
  rejects "domains nonpositive" [ ("HECTOR_DOMAINS", "0") ];
  rejects "domains negative" [ ("HECTOR_DOMAINS", "-4") ];
  check_bool "blank domains reads as unset" true
    ((p [ ("HECTOR_DOMAINS", "  ") ]).Knobs.domains = None);
  check_bool "arena off" true (not (p [ ("HECTOR_ARENA", "0") ]).Knobs.arena);
  check_bool "arena falsy word" true (not (p [ ("HECTOR_ARENA", "false") ]).Knobs.arena);
  rejects "arena junk" [ ("HECTOR_ARENA", "banana") ];
  check_bool "obs on" true (p [ ("HECTOR_OBS", "1") ]).Knobs.obs;
  check_bool "obs truthy word" true (p [ ("HECTOR_OBS", "true") ]).Knobs.obs;
  rejects "obs junk" [ ("HECTOR_OBS", "banana") ];
  (* the fault/checkpoint knobs ride the same validation *)
  check_bool "fault rate parsed" true
    ((p [ ("HECTOR_FAULT_RATE", "0.25") ]).Knobs.fault_rate = Some 0.25);
  rejects "fault rate above 1" [ ("HECTOR_FAULT_RATE", "1.5") ];
  rejects "fault rate junk" [ ("HECTOR_FAULT_RATE", "abc") ];
  check_bool "fault seed parsed" true
    ((p [ ("HECTOR_FAULT_SEED", "42") ]).Knobs.fault_seed = Some 42);
  rejects "fault seed junk" [ ("HECTOR_FAULT_SEED", "4.2") ];
  check_bool "ckpt keep parsed" true
    ((p [ ("HECTOR_CKPT_KEEP", "3") ]).Knobs.ckpt_keep = Some 3);
  rejects "ckpt keep zero" [ ("HECTOR_CKPT_KEEP", "0") ];
  check_bool "ckpt dir passes through" true
    ((p [ ("HECTOR_CKPT_DIR", "/tmp/ck") ]).Knobs.ckpt_dir = Some "/tmp/ck")

let test_knobs_refresh () =
  Unix.putenv "HECTOR_OBS" "1";
  let k = Knobs.refresh () in
  check_bool "refresh sees env" true k.Knobs.obs;
  Unix.putenv "HECTOR_OBS" "0";
  check_bool "cached until refresh" true (Knobs.current ()).Knobs.obs;
  let k = Knobs.refresh () in
  check_bool "refresh sees change" true (not k.Knobs.obs)

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "disabled handle allocates nothing" `Quick test_disabled_no_allocation;
    Alcotest.test_case "attribution total: rgcn train" `Quick test_attribution_rgcn_train;
    Alcotest.test_case "attribution total: host syncs" `Quick test_attribution_with_host_sync;
    Alcotest.test_case "engine obs counters" `Quick test_engine_obs_counters;
    Alcotest.test_case "reset_clock keep_events" `Quick test_reset_clock_keep_events;
    Alcotest.test_case "Config equals legacy labels" `Quick test_config_equals_legacy;
    Alcotest.test_case "label overrides config" `Quick test_label_overrides_config;
    Alcotest.test_case "configured observability handle" `Quick test_session_observability_config;
    Alcotest.test_case "provenance on every launch" `Quick test_provenance_in_trace;
    Alcotest.test_case "knobs parse" `Quick test_knobs_parse;
    Alcotest.test_case "knobs refresh" `Quick test_knobs_refresh;
  ]
