(* Tests for the serving subsystem: batched ≡ one-at-a-time equivalence,
   launch amortization, steady-state zero-compile/zero-alloc, admission
   control and metrics/workload determinism. *)

module T = Hector_tensor.Tensor
module Dp = Hector_tensor.Domain_pool
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Engine = Hector_gpu.Engine
module Memory = Hector_gpu.Memory
module Workload = Hector_serve.Workload
module Plan_cache = Hector_serve.Plan_cache
module Serve = Hector_serve.Serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_domains n f =
  Dp.set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> Dp.set_num_domains None) f

let parent =
  lazy
    (Gen.generate
       {
         Gen.name = "serve_parent";
         num_ntypes = 3;
         num_etypes = 6;
         num_nodes = 200;
         num_edges = 800;
         compaction_target = 0.5;
         scale = 1.0;
         seed = 33;
       })

let rgcn () = Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:4 ()

(* exact-mode config: full in-neighborhoods, so batching cannot change any
   request's receptive field *)
let exact_config ?(max_batch = 6) graph =
  {
    Serve.default_config with
    Serve.fanout = Serve.exact_fanout graph;
    hops = 2;
    max_batch = Some max_batch;
    max_wait_ms = 5.0;
    queue_capacity = Some 64;
  }

let trace ?(requests = 18) ?(rate_rps = 2000.0) graph =
  Workload.generate
    ~spec:{ Workload.default_spec with Workload.requests; rate_rps; seeds_per_request = 3 }
    ~num_nodes:graph.G.num_nodes ()

let alloc_count server = Memory.alloc_count (Engine.memory (Serve.engine server))

let outputs_of responses =
  Array.map
    (fun (r : Serve.response) ->
      match r.Serve.output with
      | Some o -> o
      | None -> Alcotest.fail "request unexpectedly shed")
    responses

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i ai ->
      Alcotest.(check (pair int int))
        "output shape" (T.rows ai, T.cols ai) (T.rows b.(i), T.cols b.(i));
      for r = 0 to T.rows ai - 1 do
        for c = 0 to T.cols ai - 1 do
          d := Float.max !d (abs_float (T.get2 ai r c -. T.get2 b.(i) r c))
        done
      done)
    a;
  !d

(* batched serving must return, per request, what a batch-size-1 replica
   returns — at 1, 2 and 4 domains *)
let test_batched_equivalence () =
  let graph = Lazy.force parent in
  let requests = trace graph in
  let serve_with ~max_batch =
    let server = Serve.create ~config:(exact_config ~max_batch graph) ~graph (rgcn ()) in
    outputs_of (Serve.serve server requests)
  in
  let reference = with_domains 1 (fun () -> serve_with ~max_batch:1) in
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let batched = serve_with ~max_batch:6 in
          let d = max_abs_diff batched reference in
          check_bool
            (Printf.sprintf "batched ≡ single (%d domains, diff %.2e)" domains d)
            true (d <= 1e-6)))
    [ 1; 2; 4 ]

let test_batching_amortizes_launches () =
  let graph = Lazy.force parent in
  let requests = trace graph in
  let launches_per_request ~max_batch =
    let server = Serve.create ~config:(exact_config ~max_batch graph) ~graph (rgcn ()) in
    let responses = Serve.serve server requests in
    Array.iter
      (fun (r : Serve.response) -> check_bool "served" true (r.Serve.output <> None))
      responses;
    float_of_int (Serve.launches server) /. float_of_int (Serve.served server)
  in
  let batched = launches_per_request ~max_batch:6 in
  let single = launches_per_request ~max_batch:1 in
  check_bool
    (Printf.sprintf "fewer launches per request batched (%.2f < %.2f)" batched single)
    true
    (batched < single)

let test_steady_state_no_compile_no_alloc () =
  let graph = Lazy.force parent in
  let server = Serve.create ~config:(exact_config graph) ~graph (rgcn ()) in
  check_int "one compile at warmup" 1 (Plan_cache.misses (Serve.plan_cache server));
  check_int "warmup allocations settled" (Serve.warm_alloc_count server) (alloc_count server);
  ignore (Serve.serve server (trace graph));
  check_int "serving allocates nothing" (Serve.warm_alloc_count server) (alloc_count server);
  ignore (Serve.serve server (trace ~requests:9 graph));
  check_int "still nothing on later episodes" (Serve.warm_alloc_count server)
    (alloc_count server);
  check_int "still exactly one compile" 1 (Plan_cache.misses (Serve.plan_cache server));
  check_bool "cache hit on re-lookup" true (Plan_cache.hits (Serve.plan_cache server) >= 0)

let test_admission_shedding () =
  let graph = Lazy.force parent in
  let config =
    { (exact_config ~max_batch:2 graph) with Serve.queue_capacity = Some 2; max_wait_ms = 50.0 }
  in
  let server = Serve.create ~config ~graph (rgcn ()) in
  (* arrivals far faster than the server can drain a 2-deep queue *)
  let requests = trace ~requests:40 ~rate_rps:100000.0 graph in
  let responses = Serve.serve server requests in
  check_bool "overload sheds" true (Serve.shed server > 0);
  check_int "served + shed = requests" (Array.length requests)
    (Serve.served server + Serve.shed server);
  let none, some =
    Array.fold_left
      (fun (n, s) (r : Serve.response) ->
        match r.Serve.output with None -> (n + 1, s) | Some _ -> (n, s + 1))
      (0, 0) responses
  in
  check_int "shed responses have no output" (Serve.shed server) none;
  check_int "served responses have output" (Serve.served server) some

let test_metrics_json () =
  let graph = Lazy.force parent in
  let server = Serve.create ~config:(exact_config graph) ~graph (rgcn ()) in
  let responses = Serve.serve server (trace graph) in
  let metrics = server |> Serve.metrics_json in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      check_bool (Printf.sprintf "metrics mention %s" key) true
        (contains metrics ("\"" ^ key ^ "\"")))
    [
      "p50"; "p95"; "p99"; "throughput_rps"; "batch_hist"; "shed"; "mean_batch";
      "plan_cache"; "launches_per_request"; "sim_elapsed_ms";
    ];
  (* fast open-loop arrivals + max_batch 6: batching must actually happen *)
  check_bool "batches formed" true (Serve.batches server < Array.length responses);
  Array.iter
    (fun (r : Serve.response) ->
      check_bool "latency covers queue+service" true
        (r.Serve.latency_ms
         >= r.Serve.queue_ms +. r.Serve.sample_ms +. r.Serve.transfer_ms
            +. r.Serve.compute_ms -. 1e-9);
      check_bool "positive compute" true (r.Serve.compute_ms > 0.0))
    responses

let test_workload_deterministic () =
  let spec = { Workload.default_spec with Workload.requests = 20; seed = 9 } in
  let a = Workload.generate ~spec ~num_nodes:100 () in
  let b = Workload.generate ~spec ~num_nodes:100 () in
  check_bool "same trace" true (a = b);
  let c = Workload.generate ~spec:{ spec with Workload.seed = 10 } ~num_nodes:100 () in
  check_bool "different seed, different arrivals" true
    (Array.exists
       (fun i -> a.(i).Workload.arrival_ms <> c.(i).Workload.arrival_ms)
       (Array.init 20 (fun i -> i)));
  Array.iteri
    (fun i (r : Workload.request) ->
      check_int "ids are positions" i r.Workload.id;
      if i > 0 then
        check_bool "arrivals increase" true (r.Workload.arrival_ms > a.(i - 1).Workload.arrival_ms);
      let sorted = Array.copy r.Workload.seeds in
      Array.sort compare sorted;
      Array.iteri
        (fun j v ->
          check_bool "seed in range" true (v >= 0 && v < 100);
          if j > 0 then check_bool "seeds distinct" true (v <> sorted.(j - 1)))
        sorted)
    a

let test_serve_knobs () =
  let graph = Lazy.force parent in
  Unix.putenv "HECTOR_SERVE_BATCH" "3";
  Unix.putenv "HECTOR_SERVE_QUEUE" "5";
  ignore (Hector_runtime.Knobs.refresh ());
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "HECTOR_SERVE_BATCH" "";
      Unix.putenv "HECTOR_SERVE_QUEUE" "";
      ignore (Hector_runtime.Knobs.refresh ()))
    (fun () ->
      let server =
        Serve.create
          ~config:{ (exact_config graph) with Serve.max_batch = None; queue_capacity = None }
          ~graph (rgcn ())
      in
      check_int "HECTOR_SERVE_BATCH" 3 (Serve.max_batch server);
      check_int "HECTOR_SERVE_QUEUE" 5 (Serve.queue_capacity server))

let suite =
  [
    Alcotest.test_case "batched ≡ one-at-a-time (1/2/4 domains)" `Quick
      test_batched_equivalence;
    Alcotest.test_case "batching amortizes kernel launches" `Quick
      test_batching_amortizes_launches;
    Alcotest.test_case "steady state: zero compiles, zero allocs" `Quick
      test_steady_state_no_compile_no_alloc;
    Alcotest.test_case "admission control sheds under overload" `Quick
      test_admission_shedding;
    Alcotest.test_case "metrics json" `Quick test_metrics_json;
    Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
    Alcotest.test_case "HECTOR_SERVE_* knobs" `Quick test_serve_knobs;
  ]
