(* Tests for the Hector core: IR, checker, transforms, fusion,
   materialization, lowering, autodiff, codegen. *)

module Ir = Hector_core.Inter_ir
module Check = Hector_core.Check
module Layout = Hector_core.Layout
module Lt = Hector_core.Loop_transform
module Lf = Hector_core.Linear_fusion
module Mat = Hector_core.Materialization
module Gs = Hector_core.Gemm_spec
module Ts = Hector_core.Traversal_spec
module Plan = Hector_core.Plan
module Lowering = Hector_core.Lowering
module Autodiff = Hector_core.Autodiff
module Codegen = Hector_core.Codegen
module Compiler = Hector_core.Compiler
module Models = Hector_models.Model_defs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* substring search for generated-code assertions *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let compile ?training ~compact ~fusion p =
  Compiler.compile ~options:(Compiler.options_of_flags ?training ~compact ~fusion ()) p

(* a minimal valid program for checker tests *)
let tiny_program body =
  {
    Ir.name = "tiny";
    decls =
      [
        Ir.Node_input { name = "h"; dim = 4 };
        Ir.Edge_input { name = "s"; dim = 1 };
        Ir.Weight_mat { name = "W"; slice = Ir.By_etype; rows = 4; cols = 3 };
        Ir.Weight_vec { name = "a"; slice = Ir.By_etype; dim = 3 };
      ];
    body;
    outputs = [];
  }

(* --- checker --- *)

let test_check_valid () =
  let p =
    tiny_program
      [
        Ir.For_each
          (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "z", Ir.Linear (Ir.Feature (Ir.Src, "h"), Ir.Weight ("W", Ir.By_etype))) ]);
      ]
  in
  match Check.check p with
  | Ok [ info ] ->
      check_string "name" "z" info.Check.name;
      check_int "dim" 3 (Check.shape_dim info.Check.shape);
      check_bool "edge scope" true (info.Check.scope = `Edge)
  | Ok _ -> Alcotest.fail "expected one var"
  | Error e -> Alcotest.fail e

let expect_error p =
  match Check.check p with
  | Ok _ -> Alcotest.fail "expected checker rejection"
  | Error _ -> ()

let test_check_rejects_bad_entity () =
  expect_error
    (tiny_program
       [ Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Feature (Ir.Cur_node, "h")) ]) ])

let test_check_rejects_undeclared () =
  expect_error
    (tiny_program
       [ Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Feature (Ir.Src, "nope")) ]) ])

let test_check_rejects_read_before_def () =
  expect_error
    (tiny_program
       [ Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Data (Ir.Cur_edge, "y")) ]) ])

let test_check_rejects_dim_mismatch () =
  expect_error
    (tiny_program
       [
         Ir.For_each
           ( Ir.Edges,
             [
               Ir.Assign
                 ( Ir.Cur_edge,
                   "x",
                   Ir.Inner (Ir.Weight ("a", Ir.By_etype), Ir.Feature (Ir.Src, "h")) );
             ] );
       ])

let test_check_rejects_wrong_slice_context () =
  expect_error
    (tiny_program
       [
         Ir.For_each
           ( Ir.Nodes,
             [
               Ir.Assign
                 (Ir.Cur_node, "x", Ir.Linear (Ir.Feature (Ir.Cur_node, "h"), Ir.Weight ("W", Ir.By_etype)));
             ] );
       ])

let test_check_rejects_assign_to_dst () =
  expect_error
    (tiny_program
       [ Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Dst, "x", Ir.Const 1.0) ]) ])

let test_check_rejects_bad_output () =
  expect_error { (tiny_program []) with Ir.outputs = [ "missing" ] }

let test_check_models () =
  List.iter
    (fun (name, build) ->
      let p = Lt.canonicalize (build ()) in
      match Check.check p with
      | Ok infos -> check_bool (name ^ " has vars") true (List.length infos > 3)
      | Error e -> Alcotest.fail e)
    Models.all

(* --- loop transforms --- *)

let test_edgeify () =
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Nodes,
            [
              Ir.For_each
                (Ir.Incoming, [ Ir.Accumulate (Ir.Cur_node, "acc", Ir.Feature (Ir.Cur_edge, "s")) ]);
            ] );
      ]
  in
  match (Lt.edgeify p).Ir.body with
  | [ Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Dst, "acc", Ir.Feature (Ir.Cur_edge, "s")) ]) ] ->
      ()
  | _ -> Alcotest.fail "edgeify did not produce the expected edge loop"

let test_edgeify_outgoing () =
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Nodes,
            [
              Ir.For_each
                (Ir.Outgoing, [ Ir.Accumulate (Ir.Cur_node, "acc", Ir.Feature (Ir.Cur_edge, "s")) ]);
            ] );
      ]
  in
  match (Lt.edgeify p).Ir.body with
  | [ Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Src, "acc", _) ]) ] -> ()
  | _ -> Alcotest.fail "outgoing should accumulate through e.src"

let test_edgeify_preserves_order () =
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Nodes,
            [
              Ir.Assign (Ir.Cur_node, "a", Ir.Const 1.0);
              Ir.For_each (Ir.Incoming, [ Ir.Accumulate (Ir.Cur_node, "b", Ir.Feature (Ir.Cur_edge, "s")) ]);
              Ir.Assign (Ir.Cur_node, "c", Ir.Const 2.0);
            ] );
      ]
  in
  match (Lt.edgeify p).Ir.body with
  | [ Ir.For_each (Ir.Nodes, [ Ir.Assign (_, "a", _) ]);
      Ir.For_each (Ir.Edges, _);
      Ir.For_each (Ir.Nodes, [ Ir.Assign (_, "c", _) ]) ] ->
      ()
  | _ -> Alcotest.fail "statement order not preserved"

let test_nodeify_roundtrip () =
  let edge_loop =
    Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Dst, "acc", Ir.Feature (Ir.Cur_edge, "s")) ])
  in
  let p = tiny_program [ edge_loop ] in
  match (Lt.nodeify p).Ir.body with
  | [ Ir.For_each (Ir.Nodes, [ Ir.For_each (Ir.Incoming, [ Ir.Accumulate (Ir.Cur_node, "acc", _) ]) ]) ]
    ->
      check_bool "roundtrip" true ((Lt.edgeify (Lt.nodeify p)).Ir.body = [ edge_loop ])
  | _ -> Alcotest.fail "nodeify failed"

let test_nodeify_converts_mixed_dst_loops () =
  (* per-edge assigns plus destination accumulation are legal in the nest *)
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Edges,
            [
              Ir.Assign (Ir.Cur_edge, "x", Ir.Const 1.0);
              Ir.Accumulate (Ir.Dst, "acc", Ir.Data (Ir.Cur_edge, "x"));
            ] );
      ]
  in
  (match (Lt.nodeify p).Ir.body with
  | [ Ir.For_each (Ir.Nodes, [ Ir.For_each (Ir.Incoming, _) ]) ] -> ()
  | _ -> Alcotest.fail "mixed dst loop should nodeify");
  (* source scatters cannot become an incoming nest *)
  let p2 =
    tiny_program
      [ Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Src, "acc", Ir.Feature (Ir.Cur_edge, "s")) ]) ]
  in
  check_bool "src scatter unchanged" true ((Lt.nodeify p2).Ir.body = p2.Ir.body)

let test_drop_zero_init () =
  let p =
    tiny_program
      [
        Ir.For_each (Ir.Nodes, [ Ir.Assign (Ir.Cur_node, "acc", Ir.Const 0.0) ]);
        Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Dst, "acc", Ir.Feature (Ir.Cur_edge, "s")) ]);
      ]
  in
  match (Lt.drop_dead_zero_init p).Ir.body with
  | [ Ir.For_each (Ir.Edges, _) ] -> ()
  | _ -> Alcotest.fail "zero-init loop should be removed"

let test_fuse_adjacent_legal () =
  let p =
    tiny_program
      [
        Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Const 1.0) ]);
        Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "y", Ir.Data (Ir.Cur_edge, "x")) ]);
      ]
  in
  check_int "fused to one loop" 1 (List.length (Lt.fuse_adjacent p).Ir.body)

let test_fuse_adjacent_blocked_by_scatter () =
  (* edge softmax shape: the normalization loop reads a node accumulation
     produced by the previous loop -> must NOT fuse *)
  let p =
    tiny_program
      [
        Ir.For_each (Ir.Edges, [ Ir.Accumulate (Ir.Dst, "sum", Ir.Feature (Ir.Cur_edge, "s")) ]);
        Ir.For_each
          ( Ir.Edges,
            [ Ir.Assign (Ir.Cur_edge, "y", Ir.Binop (Ir.Div, Ir.Feature (Ir.Cur_edge, "s"), Ir.Data (Ir.Dst, "sum"))) ] );
      ]
  in
  check_int "not fused" 2 (List.length (Lt.fuse_adjacent p).Ir.body)

(* --- linear fusion --- *)

let test_rgat_fusion_removes_zj () =
  let r = Lf.run (Lt.canonicalize (Models.rgat ())) in
  check_int "one rewrite" 1 r.Lf.rewrites;
  check_int "two weight products" 2 (List.length r.Lf.weight_ops);
  let defs = Ir.defs r.Lf.program in
  check_bool "zj eliminated" false (List.mem (`Edge, "zj") defs);
  check_bool "zi kept (used as message)" true (List.mem (`Edge, "zi") defs)

let test_hgt_fusion_collapses_chains () =
  let r = Lf.run (Lt.canonicalize (Models.hgt ())) in
  check_int "two rewrites" 2 r.Lf.rewrites;
  let defs = Ir.defs r.Lf.program in
  check_bool "k eliminated" false (List.mem (`Node, "k") defs);
  check_bool "v eliminated" false (List.mem (`Node, "v") defs);
  check_bool "q kept" true (List.mem (`Node, "q") defs);
  (* the products are between weights, sliced by relation *)
  List.iter
    (function
      | Lf.Mat_mat { left; right; _ } ->
          check_bool "left is node weight" true (List.mem left [ "K"; "V" ]);
          check_bool "right is edge weight" true (List.mem right [ "Wa"; "Wm" ])
      | Lf.Mat_vec _ -> Alcotest.fail "expected matrix-matrix products")
    r.Lf.weight_ops

let test_rgcn_fusion_noop () =
  let r = Lf.run (Lt.canonicalize (Models.rgcn ())) in
  check_int "no rewrites" 0 r.Lf.rewrites;
  check_int "no products" 0 (List.length r.Lf.weight_ops)

let test_eliminate_dead () =
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Edges,
            [
              Ir.Assign (Ir.Cur_edge, "unused", Ir.Const 1.0);
              Ir.Assign (Ir.Cur_edge, "used", Ir.Const 2.0);
              Ir.Assign (Ir.Cur_edge, "y", Ir.Data (Ir.Cur_edge, "used"));
            ] );
      ]
  in
  let p' = Lf.eliminate_dead { p with Ir.outputs = [] } in
  let defs = Ir.defs p' in
  check_bool "unused dropped" false (List.mem (`Edge, "unused") defs);
  (* y itself is unused, and removing it orphans "used": the fixpoint
     removes the whole dead chain *)
  check_bool "fixpoint removes y" false (List.mem (`Edge, "y") defs);
  check_bool "fixpoint removes orphaned used" false (List.mem (`Edge, "used") defs);
  (* with y kept alive as an output, its dependency survives *)
  let kept = Lf.eliminate_dead { p with Ir.outputs = [] } in
  ignore kept;
  let p2 =
    tiny_program
      [
        Ir.For_each
          ( Ir.Edges,
            [
              Ir.Assign (Ir.Cur_edge, "used", Ir.Const 2.0);
              Ir.Accumulate (Ir.Dst, "out", Ir.Data (Ir.Cur_edge, "used"));
            ] );
      ]
  in
  let p2' = Lf.eliminate_dead { p2 with Ir.outputs = [ "out" ] } in
  check_bool "live dependency kept" true (List.mem (`Edge, "used") (Ir.defs p2'))

(* --- materialization --- *)

let test_spaces_vanilla () =
  let p = Lt.canonicalize (Models.rgat ()) in
  let spaces = Mat.spaces Layout.default p in
  check_bool "zi edges" true (Mat.space_of spaces (`Edge, "zi") = Mat.Rows_edges);
  check_bool "out nodes" true (Mat.space_of spaces (`Node, "out") = Mat.Rows_nodes)

let test_spaces_compact () =
  let p = Lt.canonicalize (Models.rgat ()) in
  let spaces = Mat.spaces Layout.compact p in
  check_bool "zi compact-src" true (Mat.space_of spaces (`Edge, "zi") = Mat.Rows_compact_src);
  check_bool "zj compact-dst" true (Mat.space_of spaces (`Edge, "zj") = Mat.Rows_compact_dst);
  (* attention depends on both endpoints -> stays per-edge *)
  check_bool "attn per edge" true (Mat.space_of spaces (`Edge, "attn") = Mat.Rows_edges)

let test_spaces_compact_propagates () =
  let p = Lt.canonicalize (Models.hgt ()) in
  let spaces = Mat.spaces Layout.compact p in
  (* kw = linear(e.src["k"], Wa) : source node data + per-etype weight *)
  check_bool "kw compact-src" true (Mat.space_of spaces (`Edge, "kw") = Mat.Rows_compact_src);
  check_bool "m compact-src" true (Mat.space_of spaces (`Edge, "m") = Mat.Rows_compact_src)

let test_spaces_inherit () =
  let p =
    tiny_program
      [ Ir.For_each (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "z", Ir.Feature (Ir.Src, "h")) ]) ]
  in
  let spaces =
    Mat.spaces ~inherit_from:[ ((`Edge, "z"), Mat.Rows_edges) ] Layout.compact p
  in
  check_bool "pinned" true (Mat.space_of spaces (`Edge, "z") = Mat.Rows_edges)

(* --- lowering --- *)

let test_lowering_rgat_structure () =
  let c = compile ~compact:false ~fusion:false (Models.rgat ()) in
  check_int "two GEMMs (zi, zj)" 2 (Plan.gemm_count c.Compiler.forward);
  check_int "two traversals (softmax halves)" 2 (Plan.traversal_count c.Compiler.forward);
  check_int "no fallback" 0 (Plan.fallback_count c.Compiler.forward)

let test_lowering_fusion_drops_gemm () =
  let c = compile ~compact:false ~fusion:true (Models.rgat ()) in
  check_int "one GEMM after fusion" 1 (Plan.gemm_count c.Compiler.forward);
  check_int "prologue products present" 2
    (List.length
       (List.filter (function Plan.Weight_op _ -> true | _ -> false) c.Compiler.forward.Plan.steps))

let test_lowering_hgt_gemm_count () =
  let u = compile ~compact:false ~fusion:false (Models.hgt ()) in
  check_int "five GEMMs unfused" 5 (Plan.gemm_count u.Compiler.forward);
  let f = compile ~compact:false ~fusion:true (Models.hgt ()) in
  (* K,V node linears and their edge linears collapse into 2 edge GEMMs;
     Q remains: 3 total *)
  check_int "three GEMMs fused" 3 (Plan.gemm_count f.Compiler.forward)

let test_lowering_opaque_fallback () =
  let p =
    tiny_program
      [
        Ir.For_each
          (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Opaque ("mystery", [ Ir.Feature (Ir.Cur_edge, "s") ])) ]);
      ]
  in
  let c = compile ~compact:false ~fusion:false p in
  check_int "fallback emitted" 1 (Plan.fallback_count c.Compiler.forward);
  check_int "no traversal" 0 (Plan.traversal_count c.Compiler.forward)

let test_lowering_locals () =
  (* a variable produced and consumed inside one fused traversal becomes a
     register-allocated local with no buffer *)
  let p =
    {
      (tiny_program
         [
           Ir.For_each
             ( Ir.Edges,
               [
                 Ir.Assign (Ir.Cur_edge, "tmp", Ir.Binop (Ir.Mul, Ir.Feature (Ir.Cur_edge, "s"), Ir.Const 2.0));
                 Ir.Accumulate (Ir.Dst, "out", Ir.Data (Ir.Cur_edge, "tmp"));
               ] );
         ])
      with
      Ir.outputs = [ "out" ];
    }
  in
  let c = compile ~compact:false ~fusion:false p in
  check_bool "tmp has no buffer" true (Plan.find_buffer c.Compiler.forward "tmp" = None);
  match
    List.find_opt (function Plan.Traversal _ -> true | _ -> false) c.Compiler.forward.Plan.steps
  with
  | Some (Plan.Traversal t) -> check_bool "tmp is a local" true (List.mem "tmp" t.Ts.locals)
  | _ -> Alcotest.fail "expected traversal step"

let test_lowering_keeps_for_backward () =
  (* training compilation must keep forward intermediates the backward
     reads, even when private to one instance *)
  let c = compile ~training:true ~compact:false ~fusion:false (Models.rgat ()) in
  check_bool "attn buffer kept" true (Plan.find_buffer c.Compiler.forward "attn" <> None);
  match Plan.find_buffer c.Compiler.forward "attn" with
  | Some b -> check_bool "not temp" false b.Plan.temp
  | None -> Alcotest.fail "attn buffer missing"

let test_lowering_per_row_scalar_fusion () =
  let p =
    {
      (tiny_program
         [
           Ir.For_each
             ( Ir.Edges,
               [
                 Ir.Assign
                   ( Ir.Cur_edge,
                     "z",
                     Ir.Binop
                       ( Ir.Mul,
                         Ir.Linear (Ir.Feature (Ir.Src, "h"), Ir.Weight ("W", Ir.By_etype)),
                         Ir.Feature (Ir.Cur_edge, "s") ) );
               ] );
         ])
      with
      Ir.outputs = [];
    }
  in
  (* "s" is an Edge_input, not produced data, so the scalar cannot be
     matched by dims_of of produced vars — this documents the limitation:
     the pattern applies to produced scalars *)
  let p2 =
    tiny_program
      [
        Ir.For_each
          ( Ir.Edges,
            [
              Ir.Assign (Ir.Cur_edge, "sc", Ir.Feature (Ir.Cur_edge, "s"));
              Ir.Assign
                ( Ir.Cur_edge,
                  "z",
                  Ir.Binop
                    ( Ir.Mul,
                      Ir.Linear (Ir.Feature (Ir.Src, "h"), Ir.Weight ("W", Ir.By_etype)),
                      Ir.Data (Ir.Cur_edge, "sc") ) );
            ] );
      ]
  in
  ignore p;
  let c = compile ~compact:false ~fusion:false p2 in
  let gemm_with_scalar =
    List.exists
      (function
        | Plan.Gemm { Gs.task = Gs.Edge_linear { per_row_scalar = Some "sc"; _ }; _ } -> true
        | _ -> false)
      (Plan.flatten_steps c.Compiler.forward)
  in
  check_bool "scalar fused into GEMM store" true gemm_with_scalar

let test_schedule_validation () =
  check_bool "bad tile rejected" true
    (try
       Gs.validate_schedule { Gs.tile_width = 20; coarsen = 1; launch_bounds = false };
       false
     with Invalid_argument _ -> true);
  check_bool "bad coarsen rejected" true
    (try
       Gs.validate_schedule { Gs.tile_width = 16; coarsen = 3; launch_bounds = false };
       false
     with Invalid_argument _ -> true)

(* --- autodiff --- *)

let test_backward_generated_for_models () =
  List.iter
    (fun (name, build) ->
      let c = compile ~training:true ~compact:false ~fusion:false (build ()) in
      match c.Compiler.backward with
      | Some b ->
          check_bool (name ^ " backward has steps") true (List.length b.Plan.steps > 0);
          check_bool (name ^ " backward has gemms") true (Plan.gemm_count b > 0)
      | None -> Alcotest.fail (name ^ ": no backward plan"))
    Models.all

let test_backward_reads_forward () =
  let p = Lt.canonicalize (Models.rgat ()) in
  let r = Autodiff.backward p in
  (* softmax backward needs the forward attention values *)
  check_bool "reads attn_pre_exp" true (List.mem (`Edge, "attn_pre_exp") r.Autodiff.reads_forward);
  check_bool "reads zi" true (List.mem (`Edge, "zi") r.Autodiff.reads_forward)

let test_backward_seed_is_input () =
  let p = Lt.canonicalize (Models.rgcn ()) in
  let r = Autodiff.backward p in
  check_bool "d:out declared as input" true
    (match Ir.find_decl r.Autodiff.program "d:out" with
    | Some (Ir.Node_input _) -> true
    | _ -> false)

let test_backward_rejects_opaque () =
  let p =
    {
      (tiny_program
         [
           Ir.For_each
             (Ir.Edges, [ Ir.Assign (Ir.Cur_edge, "x", Ir.Opaque ("f", [ Ir.Feature (Ir.Cur_edge, "s") ])) ]);
         ])
      with
      Ir.outputs = [];
    }
  in
  check_bool "unsupported" true
    (try
       ignore (Autodiff.backward p);
       false
     with Autodiff.Unsupported _ -> true)

let test_backward_rejects_reassignment () =
  let p =
    tiny_program
      [
        Ir.For_each
          ( Ir.Edges,
            [
              Ir.Assign (Ir.Cur_edge, "x", Ir.Const 1.0);
              Ir.Assign (Ir.Cur_edge, "x", Ir.Const 2.0);
            ] );
      ]
  in
  check_bool "unsupported" true
    (try
       ignore (Autodiff.backward p);
       false
     with Autodiff.Unsupported _ -> true)

let test_grad_names () =
  check_string "grad name" "d:x" (Autodiff.grad_name "x");
  check_bool "is grad" true (Autodiff.is_grad_name "d:x");
  check_bool "not grad" false (Autodiff.is_grad_name "dx")

(* --- codegen --- *)

let test_codegen_gemm_schedule_directives () =
  let spec =
    {
      Gs.kid = 0;
      task =
        Gs.Edge_linear
          {
            side = `Src;
            input = Gs.Op_feature "h";
            weight = "W";
            output = "z";
            out_space = Mat.Rows_compact_src;
            transpose = false;
            per_row_scalar = None;
          };
      schedule = { Gs.tile_width = 32; coarsen = 2; launch_bounds = true };
    }
  in
  let src = Codegen.gemm_kernel Layout.default spec in
  check_bool "launch bounds" true (contains src "__launch_bounds__");
  check_bool "compact scatter" true (contains src "compact");
  check_bool "shared tiles sized by schedule" true (contains src "shmA[32][32]")

let test_codegen_traversal_adjacency () =
  let spec =
    {
      Ts.kid = 0;
      strategy = Ts.Edge_parallel;
      body = [ Ir.Accumulate (Ir.Dst, "sum", Ir.Feature (Ir.Cur_edge, "s")) ];
      locals = [];
      schedule = Ts.default_schedule;
    }
  in
  let coo = Codegen.traversal_kernel Layout.default spec in
  check_bool "coo subscript" true (contains coo "coo_src[idxEdge]");
  check_bool "atomic" true (contains coo "atomicAdd");
  let csr = Codegen.traversal_kernel { Layout.default with Layout.adjacency = Layout.Csr } spec in
  check_bool "csr search" true (contains csr "binary_search_owner")

let test_plan_preprocessing () =
  let vanilla = compile ~compact:false ~fusion:false (Models.rgcn ()) in
  let compact = compile ~compact:true ~fusion:false (Models.rgcn ()) in
  let has sub plan =
    List.exists (fun s -> contains s sub) (Plan.preprocessing plan)
  in
  check_bool "COO listed" true (has "COO" vanilla.Compiler.forward);
  check_bool "presorting listed" true (has "presort" vanilla.Compiler.forward);
  check_bool "no compact map for vanilla" false (has "compact row mapping" vanilla.Compiler.forward);
  check_bool "compact map listed" true (has "(etype, src) compact" compact.Compiler.forward);
  let csr =
    Compiler.compile
      ~options:
        { Compiler.default_options with Compiler.layout = { Layout.default with Layout.adjacency = Layout.Csr } }
      (Models.rgcn ())
  in
  check_bool "CSR conversion listed" true (has "CSR" csr.Compiler.forward)

let test_codegen_emit_plan () =
  let c = compile ~compact:true ~fusion:true (Models.rgat ()) in
  let src = Codegen.emit_plan c.Compiler.forward in
  check_bool "has global kernels" true (contains src "__global__");
  check_bool "has host function" true (contains src "void hector_rgat");
  check_bool "has bmm prologue" true (contains src "at::bmm");
  check_bool "lists preprocessing" true (contains src "required preprocessing")

let suite =
  [
    Alcotest.test_case "check valid program" `Quick test_check_valid;
    Alcotest.test_case "check rejects bad entity" `Quick test_check_rejects_bad_entity;
    Alcotest.test_case "check rejects undeclared" `Quick test_check_rejects_undeclared;
    Alcotest.test_case "check rejects read-before-def" `Quick test_check_rejects_read_before_def;
    Alcotest.test_case "check rejects dim mismatch" `Quick test_check_rejects_dim_mismatch;
    Alcotest.test_case "check rejects wrong slice ctx" `Quick test_check_rejects_wrong_slice_context;
    Alcotest.test_case "check rejects assign to dst" `Quick test_check_rejects_assign_to_dst;
    Alcotest.test_case "check rejects bad output" `Quick test_check_rejects_bad_output;
    Alcotest.test_case "check accepts all models" `Quick test_check_models;
    Alcotest.test_case "edgeify incoming nest" `Quick test_edgeify;
    Alcotest.test_case "edgeify outgoing nest" `Quick test_edgeify_outgoing;
    Alcotest.test_case "edgeify preserves order" `Quick test_edgeify_preserves_order;
    Alcotest.test_case "nodeify roundtrip" `Quick test_nodeify_roundtrip;
    Alcotest.test_case "nodeify converts mixed dst loops" `Quick test_nodeify_converts_mixed_dst_loops;
    Alcotest.test_case "drop dead zero init" `Quick test_drop_zero_init;
    Alcotest.test_case "fuse adjacent legal" `Quick test_fuse_adjacent_legal;
    Alcotest.test_case "fusion blocked by scatter dep" `Quick test_fuse_adjacent_blocked_by_scatter;
    Alcotest.test_case "RGAT linear fusion removes zj" `Quick test_rgat_fusion_removes_zj;
    Alcotest.test_case "HGT linear fusion collapses chains" `Quick test_hgt_fusion_collapses_chains;
    Alcotest.test_case "RGCN linear fusion no-op" `Quick test_rgcn_fusion_noop;
    Alcotest.test_case "dead elimination fixpoint" `Quick test_eliminate_dead;
    Alcotest.test_case "spaces vanilla" `Quick test_spaces_vanilla;
    Alcotest.test_case "spaces compact src/dst" `Quick test_spaces_compact;
    Alcotest.test_case "compactness propagates" `Quick test_spaces_compact_propagates;
    Alcotest.test_case "spaces inherit pins" `Quick test_spaces_inherit;
    Alcotest.test_case "lowering RGAT structure" `Quick test_lowering_rgat_structure;
    Alcotest.test_case "fusion drops a GEMM" `Quick test_lowering_fusion_drops_gemm;
    Alcotest.test_case "HGT GEMM counts" `Quick test_lowering_hgt_gemm_count;
    Alcotest.test_case "opaque lowers to fallback" `Quick test_lowering_opaque_fallback;
    Alcotest.test_case "instance-private vars become locals" `Quick test_lowering_locals;
    Alcotest.test_case "training keeps backward reads" `Quick test_lowering_keeps_for_backward;
    Alcotest.test_case "per-row scalar fuses into GEMM" `Quick test_lowering_per_row_scalar_fusion;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "backward generated for models" `Quick test_backward_generated_for_models;
    Alcotest.test_case "backward reads forward vars" `Quick test_backward_reads_forward;
    Alcotest.test_case "backward seed is an input" `Quick test_backward_seed_is_input;
    Alcotest.test_case "backward rejects opaque" `Quick test_backward_rejects_opaque;
    Alcotest.test_case "backward rejects reassignment" `Quick test_backward_rejects_reassignment;
    Alcotest.test_case "grad names" `Quick test_grad_names;
    Alcotest.test_case "codegen gemm directives" `Quick test_codegen_gemm_schedule_directives;
    Alcotest.test_case "codegen traversal adjacency" `Quick test_codegen_traversal_adjacency;
    Alcotest.test_case "plan preprocessing collection" `Quick test_plan_preprocessing;
    Alcotest.test_case "codegen whole plan" `Quick test_codegen_emit_plan;
  ]
