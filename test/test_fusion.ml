(* Tests for the inter-op kernel-fusion pass (Inter_op_fusion): fused
   plans must be numerically identical to the unfused pipeline — forward
   outputs, backward gradients and multi-step training — while launching
   strictly fewer kernels, and the HECTOR_FUSE_OPS=0 escape hatch must
   reproduce the pre-fusion plans bit-for-bit. *)

module T = Hector_tensor.Tensor
module G = Hector_graph.Hetgraph
module Engine = Hector_gpu.Engine
module Stats = Hector_gpu.Stats
module Plan = Hector_core.Plan
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Knobs = Hector_runtime.Knobs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_of ~seed ~nodes ~edges =
  Hector_graph.Generator.generate
    {
      Hector_graph.Generator.name = "fusion_test";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = nodes;
      num_edges = edges;
      compaction_target = 0.4;
      scale = 1.0;
      seed;
    }

let out_dim = 5

let compile ?(training = false) ?(compact = false) ?(fusion = false) ?fuse_ops model =
  Compiler.compile
    ~options:(Compiler.options_of_flags ~training ?fuse_ops ~compact ~fusion ())
    (Hector_models.Model_defs.by_name model ~in_dim:8 ~out_dim ())

let session ?domains ~graph ~seed compiled =
  let config = { Session.Config.default with Session.Config.seed; domains } in
  Session.create ~config ~graph compiled

let labels_of graph = Array.init graph.G.num_nodes (fun v -> v mod out_dim)
let launches s = (Stats.total (Engine.stats (Session.engine s))).Stats.launches

(* largest |a - b| over two (name, tensor) assoc lists; infinite when a
   name is missing on one side *)
let max_assoc_diff a b =
  if List.length a <> List.length b then infinity
  else
    List.fold_left
      (fun acc (name, t) ->
        match List.assoc_opt name b with
        | Some u -> Float.max acc (T.max_abs_diff t u)
        | None -> infinity)
      0.0 a

(* --- numerical equivalence (property) ---------------------------------- *)

(* Random model x graph x worker-domain count: a fused session and an
   unfused session built from the same seed must agree to <= 1e-6 on the
   forward outputs, the loss and weight gradients, and the weights after
   three full training steps. *)
let prop_fused_equals_unfused =
  QCheck.Test.make ~name:"fused == unfused (forward, grads, 3-step training)" ~count:6
    QCheck.(make Gen.(triple (int_range 0 1) (int_range 0 999) (int_range 1 2)))
    (fun (mi, seed, domains) ->
      let model = [| "rgcn"; "rgat" |].(mi) in
      let graph =
        graph_of ~seed:(seed + 1)
          ~nodes:(40 + (seed mod 3 * 25))
          ~edges:(160 + (seed mod 5 * 40))
      in
      let fused = compile ~training:true ~fuse_ops:true model in
      let unfused = compile ~training:true ~fuse_ops:false model in
      let sf = session ~domains ~graph ~seed:(3 + seed) fused in
      let su = session ~domains ~graph ~seed:(3 + seed) unfused in
      let forward_ok = max_assoc_diff (Session.forward sf) (Session.forward su) <= 1e-6 in
      let labels = labels_of graph in
      let lf = Session.loss_and_grads sf ~labels in
      let lu = Session.loss_and_grads su ~labels in
      let grads_ok =
        abs_float (lf -. lu) <= 1e-6
        && max_assoc_diff (Session.weight_grads sf) (Session.weight_grads su) <= 1e-6
      in
      let train_ok =
        let losses_ok = ref true in
        for _ = 1 to 3 do
          let lf = Session.train_step sf ~labels () in
          let lu = Session.train_step su ~labels () in
          if abs_float (lf -. lu) > 1e-6 then losses_ok := false
        done;
        !losses_ok && max_assoc_diff (Session.weights sf) (Session.weights su) <= 1e-6
      in
      forward_ok && grads_ok && train_ok)

(* --- strictly fewer launches ------------------------------------------- *)

(* one steady-state run (the warm-up run builds the plan arenas and is
   discarded) *)
let steady_launches ~run s =
  run s;
  Session.reset_clock s;
  run s;
  launches s

let test_fewer_launches model ~training () =
  let graph = graph_of ~seed:11 ~nodes:120 ~edges:480 in
  let labels = labels_of graph in
  let run s =
    if training then ignore (Session.train_step s ~labels ())
    else ignore (Session.forward s)
  in
  let count fuse_ops =
    steady_launches ~run (session ~graph ~seed:3 (compile ~training ~fuse_ops model))
  in
  let fused = count true and unfused = count false in
  check_bool
    (Printf.sprintf "%s fused launches strictly fewer (%d < %d)" model fused unfused)
    true (fused < unfused)

(* the fig5/rgcn_train acceptance pin: 2 fused forward groups + the agg
   memset, 2 fused backward groups + the d:agg memset (d:self and d:msg
   are zero-initialized inside their fused groups, so their memsets are
   elided), 2 loss kernels and 2 SGD updates = 10 launches per step,
   down from 16 unfused *)
let test_rgcn_train_launch_pin () =
  let graph = graph_of ~seed:11 ~nodes:120 ~edges:480 in
  let labels = labels_of graph in
  let run s = ignore (Session.train_step s ~labels ()) in
  let count fuse_ops =
    steady_launches ~run (session ~graph ~seed:3 (compile ~training:true ~fuse_ops "rgcn"))
  in
  check_int "rgcn train fused launches" 10 (count true);
  check_int "rgcn train unfused launches" 16 (count false)

(* --- HECTOR_FUSE_OPS=0 reproduces the pre-fusion pipeline -------------- *)

let with_knob value f =
  Unix.putenv "HECTOR_FUSE_OPS" value;
  ignore (Knobs.refresh ());
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "HECTOR_FUSE_OPS" "1";
      ignore (Knobs.refresh ()))
    f

let test_knob_off_bit_for_bit () =
  List.iter
    (fun model ->
      let explicit = compile ~training:true ~fuse_ops:false model in
      (* fuse_ops left unset: the compilation follows the knob *)
      let knobbed = with_knob "0" (fun () -> compile ~training:true model) in
      check_int (model ^ " knob off: no fused steps") 0
        (Plan.fused_count knobbed.Compiler.forward);
      check_bool (model ^ " knob off: forward plan bit-for-bit") true
        (knobbed.Compiler.forward = explicit.Compiler.forward);
      check_bool (model ^ " knob off: backward plan bit-for-bit") true
        (knobbed.Compiler.backward = explicit.Compiler.backward);
      let fused = compile ~training:true model in
      check_bool (model ^ " knob back on: plans fuse again") true
        (Plan.fused_count fused.Compiler.forward > 0))
    [ "rgcn"; "rgat" ]

(* --- steady-state allocations of the fused RGAT configurations --------- *)

(* table5/rgat_fused and fig6/rgat_compact_fused used to allocate three
   tensors per steady-state run (the linear-fusion weight ops rebuilt
   their stacked outputs every time); with weight-op output reuse the only
   per-run allocation left is the defensive copy [Session.forward]
   returns *)
let test_fused_rgat_steady_state_allocs () =
  List.iter
    (fun compact ->
      let graph = graph_of ~seed:7 ~nodes:120 ~edges:480 in
      let s = session ~graph ~seed:3 (compile ~compact ~fusion:true "rgat") in
      ignore (Session.forward s);
      let a0 = T.allocation_count () in
      ignore (Session.forward s);
      check_int
        (Printf.sprintf "rgat fused steady-state allocs (compact=%b)" compact)
        1
        (T.allocation_count () - a0))
    [ false; true ]

(* --- attribution stays total with fused provenance --------------------- *)

let test_fused_attribution_total () =
  let graph = graph_of ~seed:5 ~nodes:100 ~edges:400 in
  let s = session ~graph ~seed:3 (compile ~training:true ~fuse_ops:true "rgcn") in
  ignore (Session.train_step s ~labels:(labels_of graph) ());
  let st = Engine.stats (Session.engine s) in
  check_bool "attributed = elapsed under fusion" true
    (abs_float (Stats.attributed_ms st -. Engine.elapsed_ms (Session.engine s)) < 1e-9);
  (* fused steps bill under their "+"-joined constituent ops *)
  check_bool "a fused op key is attributed" true
    (List.exists (fun (op, _) -> String.contains op '+') (Stats.by_op st))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fused_equals_unfused;
    Alcotest.test_case "rgcn inference launches strictly fewer" `Quick
      (test_fewer_launches "rgcn" ~training:false);
    Alcotest.test_case "rgat inference launches strictly fewer" `Quick
      (test_fewer_launches "rgat" ~training:false);
    Alcotest.test_case "rgat training launches strictly fewer" `Quick
      (test_fewer_launches "rgat" ~training:true);
    Alcotest.test_case "rgcn training launch counts pinned" `Quick test_rgcn_train_launch_pin;
    Alcotest.test_case "HECTOR_FUSE_OPS=0 reproduces pre-fusion plans" `Quick
      test_knob_off_bit_for_bit;
    Alcotest.test_case "fused rgat steady state allocates once" `Quick
      test_fused_rgat_steady_state_allocs;
    Alcotest.test_case "attribution stays total under fusion" `Quick
      test_fused_attribution_total;
  ]
