(* Tests for the delta-ingestion subsystem: delta generation, mutable-graph
   snapshots (CSR patching, epochs, compaction), incremental partition
   rebalance, and the serve-over-deltas ≡ rebuild-from-scratch anchor. *)

module T = Hector_tensor.Tensor
module Rng = Hector_tensor.Rng
module Dp = Hector_tensor.Domain_pool
module G = Hector_graph.Hetgraph
module Csr = Hector_graph.Csr
module Gen = Hector_graph.Generator
module Sampler = Hector_graph.Sampler
module Partition = Hector_graph.Partition
module Engine = Hector_gpu.Engine
module Memory = Hector_gpu.Memory
module Knobs = Hector_runtime.Knobs
module Workload = Hector_serve.Workload
module Serve = Hector_serve.Serve
module Delta = Hector_stream.Delta
module Mg = Hector_stream.Mutable_graph
module Ss = Hector_stream.Stream_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_domains n f =
  Dp.set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> Dp.set_num_domains None) f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let base_graph ?(seed = 7) () =
  Gen.generate
    {
      Gen.name = "stream_base";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = 120;
      num_edges = 420;
      compaction_target = 0.5;
      scale = 1.0;
      seed;
    }

let feat_dim = 8

let make_mg ?slack ?compact ?(seed = 7) () =
  let g = base_graph ~seed () in
  let features = T.randn (Rng.create (seed + 1)) [| g.G.num_nodes; feat_dim |] in
  Mg.create ?slack ?compact ~graph:g ~features ()

let rgcn () = Hector_models.Model_defs.rgcn ~in_dim:feat_dim ~out_dim:4 ()

let serve_config =
  {
    Serve.default_config with
    Serve.fanout = 8;
    hops = 2;
    max_batch = Some 4;
    max_wait_ms = 5.0;
    queue_capacity = Some 64;
  }

let trace ?(seed = 3) ?(requests = 10) num_nodes =
  Workload.generate
    ~spec:{ Workload.seed; requests; rate_rps = 2000.0; seeds_per_request = 2 }
    ~num_nodes ()

let gen_delta ?mix mg ~seed ~ops =
  Delta.generate ?mix ~view:(Mg.view mg) ~seed ~ops ()

let strictly_increasing_on_survivors map =
  let last = ref (-1) in
  Array.for_all
    (fun v ->
      if v < 0 then true
      else if v > !last then begin
        last := v;
        true
      end
      else false)
    map

(* --- delta generation ------------------------------------------------- *)

let test_generate_deterministic () =
  let mg = make_mg () in
  let d1 = gen_delta mg ~seed:5 ~ops:40 in
  let d2 = gen_delta mg ~seed:5 ~ops:40 in
  check_bool "same seed, same delta" true (d1 = d2);
  check_int "asked op count" 40 (Delta.size d1);
  let d3 = gen_delta mg ~seed:6 ~ops:40 in
  check_bool "different seed differs" true (d1 <> d3);
  match Mg.apply mg d1 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("generated delta rejected: " ^ m)

let test_generate_feature_only_mix () =
  let mg = make_mg () in
  let mix =
    { Delta.add_node = 0.0; remove_node = 0.0; add_edge = 0.0; remove_edge = 0.0; set_feat = 1.0 }
  in
  let d = gen_delta ~mix mg ~seed:11 ~ops:20 in
  check_bool "non-structural" false (Delta.structural d);
  check_int "all ops drawn" 20 (Delta.size d)

(* --- mutable graph ---------------------------------------------------- *)

(* random delta traces always apply cleanly; after every apply the
   incrementally-maintained CSR equals a from-scratch rebuild and the
   old->new maps are strictly increasing on survivors *)
let test_apply_csr_and_maps =
  QCheck.Test.make ~name:"deltas apply; patched CSR ≡ rebuilt; maps monotone"
    ~count:25
    QCheck.(make Gen.(pair (int_range 0 999) (int_range 1 6)))
    (fun (seed, rounds) ->
      let mg = make_mg ~slack:0.4 ~compact:0.3 ~seed:(seed land 7) () in
      for r = 0 to rounds - 1 do
        let d = gen_delta mg ~seed:((seed * 31) + r) ~ops:25 in
        match Mg.apply mg d with
        | Error m -> failwith m
        | Ok st ->
            let snap = Mg.snapshot mg in
            let fresh = Csr.incoming snap.Mg.graph in
            if
              snap.Mg.csr.Csr.row_ptr <> fresh.Csr.row_ptr
              || snap.Mg.csr.Csr.col <> fresh.Csr.col
              || snap.Mg.csr.Csr.eid <> fresh.Csr.eid
            then failwith "maintained CSR diverged from Csr.incoming";
            if not (strictly_increasing_on_survivors st.Mg.node_map) then
              failwith "node_map not monotone";
            if not (strictly_increasing_on_survivors st.Mg.edge_map) then
              failwith "edge_map not monotone";
            if Mg.live_nodes mg <> snap.Mg.graph.G.num_nodes then
              failwith "live node count out of sync with snapshot"
      done;
      true)

let test_reject_is_atomic () =
  let mg = make_mg () in
  let v0 = Mg.version mg in
  let n0 = Mg.live_nodes mg in
  let e0 = Mg.live_edges mg in
  (* valid op followed by an invalid one: the whole batch must bounce *)
  let d =
    { Delta.ops = [| Delta.Add_node { ntype = 0; feat = None }; Delta.Remove_node { node = 999_999 } |] }
  in
  (match Mg.apply mg d with
  | Ok _ -> Alcotest.fail "invalid delta accepted"
  | Error m -> check_bool "names the op" true (contains m "op 1"));
  check_int "version unchanged" v0 (Mg.version mg);
  check_int "nodes unchanged" n0 (Mg.live_nodes mg);
  check_int "edges unchanged" e0 (Mg.live_edges mg);
  check_int "rejection counted" 1 (Mg.counters mg).Mg.rejected_deltas

let test_feature_only_reuses_graph () =
  let mg = make_mg () in
  let before = Mg.snapshot mg in
  let mix =
    { Delta.add_node = 0.0; remove_node = 0.0; add_edge = 0.0; remove_edge = 0.0; set_feat = 1.0 }
  in
  (match Mg.apply mg (gen_delta ~mix mg ~seed:2 ~ops:10) with
  | Error m -> Alcotest.fail m
  | Ok st ->
      check_bool "not structural" false st.Mg.structural;
      check_bool "no CSR rebuild" false st.Mg.csr_rebuilt;
      check_int "no rows patched" 0 st.Mg.csr_patched_rows);
  let after = Mg.snapshot mg in
  check_bool "physical graph reused" true (before.Mg.graph == after.Mg.graph);
  check_bool "CSR reused" true (before.Mg.csr == after.Mg.csr);
  check_bool "features refreshed" true (before.Mg.features != after.Mg.features)

let test_edge_only_patches_csr () =
  let mg = make_mg () in
  let mix =
    { Delta.add_node = 0.0; remove_node = 0.0; add_edge = 0.6; remove_edge = 0.4; set_feat = 0.0 }
  in
  match Mg.apply mg (gen_delta ~mix mg ~seed:4 ~ops:12) with
  | Error m -> Alcotest.fail m
  | Ok st ->
      check_bool "no full rebuild" false st.Mg.csr_rebuilt;
      check_bool "some rows patched" true (st.Mg.csr_patched_rows > 0);
      check_bool "patched under node count" true
        (st.Mg.csr_patched_rows < (Mg.snapshot mg).Mg.graph.G.num_nodes)

let test_epoch_bump () =
  let mg = make_mg ~slack:0.0 () in
  check_int "epoch 0" 0 (Mg.epoch mg);
  check_bool "capacity graph named for epoch 0" true
    (contains (Mg.capacity_graph mg).G.name "#e0");
  (* zero slack: capacity = live, so one insertion overflows *)
  let d = { Delta.ops = [| Delta.Add_node { ntype = 1; feat = None } |] } in
  (match Mg.apply mg d with
  | Error m -> Alcotest.fail m
  | Ok st ->
      check_bool "epoch changed" true st.Mg.epoch_changed;
      check_bool "CSR rebuilt" true st.Mg.csr_rebuilt);
  check_int "epoch 1" 1 (Mg.epoch mg);
  check_bool "capacity graph renamed" true
    (contains (Mg.capacity_graph mg).G.name "#e1");
  check_int "epoch counter" 1 (Mg.counters mg).Mg.epochs

let test_capacity_graph_bounds () =
  let mg = make_mg ~slack:0.5 () in
  let cap = Mg.capacity_graph mg in
  let g = (Mg.snapshot mg).Mg.graph in
  for nt = 0 to G.num_ntypes g - 1 do
    let _, live = G.nodes_of_type g nt in
    let _, capped = G.nodes_of_type cap nt in
    check_int
      (Printf.sprintf "ntype %d capacity" nt)
      (max 1 (int_of_float (ceil (1.5 *. float_of_int live))))
      capped;
    check_int "accessor agrees" capped (Mg.node_capacity mg nt)
  done;
  for et = 0 to G.num_etypes g - 1 do
    let _, live = G.edges_of_type g et in
    let _, capped = G.edges_of_type cap et in
    check_int
      (Printf.sprintf "etype %d capacity" et)
      (max 1 (int_of_float (ceil (1.5 *. float_of_int live))))
      capped
  done

(* --- stale ids: induce / sampler / serve ------------------------------ *)

let test_stale_ids_surface_as_errors () =
  let g = base_graph () in
  (* induce: stable Error, not an exception *)
  (match G.induce_result g ~nodes:[| 0; g.G.num_nodes + 3 |] ~edges:[||] with
  | Ok _ -> Alcotest.fail "induce accepted an out-of-range node"
  | Error m -> check_bool "message names the range" true (contains m "out of range"));
  (* sampler: same via sample_result *)
  (match Sampler.sample_result ~graph:g ~seeds:[| g.G.num_nodes + 3 |] ~fanout:4 ~hops:1 () with
  | Ok _ -> Alcotest.fail "sampler accepted a stale seed"
  | Error m -> check_bool "sampler error mentions seed" true (contains m "seed"));
  (* the raising wrapper still raises, for callers that want that *)
  check_bool "sample raises on stale seed" true
    (match Sampler.sample ~graph:g ~seeds:[| -1 |] ~fanout:4 ~hops:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* a request whose seed was tombstoned by a delta is rejected by the
   replica — counted, never raised, never shedding others *)
let test_serve_rejects_tombstoned_seed () =
  let mg = make_mg ~slack:2.0 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  let stale = Mg.live_nodes mg + 5 in
  let requests =
    [|
      { Workload.id = 0; arrival_ms = 0.0; seeds = [| 0; 1 |] };
      { Workload.id = 1; arrival_ms = 0.1; seeds = [| stale |] };
      { Workload.id = 2; arrival_ms = 0.2; seeds = [| 2 |] };
    |]
  in
  let responses = Ss.serve ss requests in
  check_bool "valid request served" true (responses.(0).Serve.output <> None);
  check_bool "stale request rejected" true (responses.(1).Serve.output = None);
  check_bool "later request unaffected" true (responses.(2).Serve.output <> None);
  check_int "rejection counted" 1 (Serve.rejected (Ss.replica ss));
  check_int "nothing shed" 0 (Serve.shed (Ss.replica ss))

(* --- partition rebalance ---------------------------------------------- *)

let check_partition_invariants g (p : Partition.t) =
  let n = g.G.num_nodes in
  if Array.length p.Partition.owner <> n then failwith "owner length";
  Array.iter
    (fun o -> if o < 0 || o >= p.Partition.parts then failwith "owner out of range")
    p.Partition.owner;
  (* every parent edge appears in exactly one partition — the one owning
     its destination — and local structure mirrors the parent *)
  let edge_seen = Array.make g.G.num_edges 0 in
  let owned_seen = Array.make n 0 in
  Array.iteri
    (fun pid (m : Partition.part) ->
      Array.iteri
        (fun le pe ->
          edge_seen.(pe) <- edge_seen.(pe) + 1;
          if p.Partition.owner.(g.G.dst.(pe)) <> pid then
            failwith "edge assigned to a partition not owning its destination";
          if
            g.G.src.(pe) <> m.Partition.origin_node.(m.Partition.sub.G.src.(le))
            || g.G.dst.(pe) <> m.Partition.origin_node.(m.Partition.sub.G.dst.(le))
            || g.G.etype.(pe) <> m.Partition.sub.G.etype.(le)
          then failwith "local edge does not mirror its parent edge")
        m.Partition.origin_edge;
      Array.iteri
        (fun ln pn ->
          if g.G.node_type.(pn) <> m.Partition.sub.G.node_type.(ln) then
            failwith "local node type mismatch";
          let should_own = p.Partition.owner.(pn) = pid in
          if m.Partition.owned.(ln) <> should_own then failwith "owned flag wrong";
          if should_own then owned_seen.(pn) <- owned_seen.(pn) + 1
          else begin
            (* halo completeness: a non-owned local must mirror a row of
               the partition that owns it *)
            let peer = p.Partition.owner.(pn) in
            let found = ref false in
            Array.iter
              (fun (q, pairs) ->
                if q = peer then
                  Array.iter
                    (fun (local, peer_local) ->
                      if local = ln then begin
                        if
                          p.Partition.members.(q).Partition.origin_node.(peer_local)
                          <> pn
                        then failwith "halo mirrors the wrong parent node";
                        found := true
                      end)
                    pairs)
              m.Partition.halo;
            if not !found then failwith "halo entry missing for boundary node"
          end)
        m.Partition.origin_node)
    p.Partition.members;
  Array.iter (fun c -> if c <> 1 then failwith "edge not covered exactly once") edge_seen;
  Array.iter (fun c -> if c <> 1 then failwith "node not owned exactly once") owned_seen;
  (* cut statistics agree with the ownership *)
  let cut = ref 0 in
  for e = 0 to g.G.num_edges - 1 do
    if p.Partition.owner.(g.G.src.(e)) <> p.Partition.owner.(g.G.dst.(e)) then incr cut
  done;
  if p.Partition.cut_edges <> !cut then failwith "cut_edges stale"

let test_rebalance_invariants =
  QCheck.Test.make ~name:"incremental rebalance upholds partition invariants"
    ~count:20
    QCheck.(make Gen.(triple (int_range 0 499) (int_range 1 4) (int_range 5 40)))
    (fun (seed, parts, ops) ->
      let mg = make_mg ~seed:(seed land 7) () in
      let p0 = Partition.partition ~parts (Mg.snapshot mg).Mg.graph in
      let d = gen_delta mg ~seed ~ops in
      match Mg.apply mg d with
      | Error m -> failwith m
      | Ok st ->
          let g = (Mg.snapshot mg).Mg.graph in
          let p1, stats =
            Partition.rebalance p0 ~graph:g ~node_map:st.Mg.node_map
              ~edge_map:st.Mg.edge_map ()
          in
          check_partition_invariants g p1;
          if not stats.Partition.full_rebuild then begin
            if Partition.balance p1 > 2.0 +. 1e-9 then
              failwith "balance bound exceeded without a full rebuild";
            if
              stats.Partition.parts_rebuilt + stats.Partition.parts_reused
              <> parts
            then failwith "rebuilt + reused <> parts"
          end;
          true)

let test_rebalance_feature_only_reuses_everything () =
  let mg = make_mg () in
  let parts = 3 in
  let p0 = Partition.partition ~parts (Mg.snapshot mg).Mg.graph in
  let mix =
    { Delta.add_node = 0.0; remove_node = 0.0; add_edge = 0.0; remove_edge = 0.0; set_feat = 1.0 }
  in
  match Mg.apply mg (gen_delta ~mix mg ~seed:9 ~ops:8) with
  | Error m -> Alcotest.fail m
  | Ok st ->
      let g = (Mg.snapshot mg).Mg.graph in
      let _, stats =
        Partition.rebalance p0 ~graph:g ~node_map:st.Mg.node_map
          ~edge_map:st.Mg.edge_map ()
      in
      check_int "no partitions rebuilt" 0 stats.Partition.parts_rebuilt;
      check_int "all reused" parts stats.Partition.parts_reused;
      check_int "no halos touched" 0 stats.Partition.halos_patched;
      check_bool "no full rebuild" false stats.Partition.full_rebuild

(* --- streaming serve --------------------------------------------------- *)

(* the invalidation-protocol pins: a warm replica survives in-slack
   deltas with zero recompiles and zero engine allocations *)
let test_inslack_zero_recompile_zero_alloc () =
  let mg = make_mg ~slack:4.0 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  check_int "warmup compiles once" 1 (Ss.recompiles ss);
  check_int "slab tagged epoch 0" 0 (Serve.slab_epoch (Ss.replica ss));
  let warm = Serve.warm_alloc_count (Ss.replica ss) in
  for r = 0 to 4 do
    let d = gen_delta mg ~seed:(100 + r) ~ops:15 in
    (match Ss.apply ss d with
    | Error m -> Alcotest.fail m
    | Ok st -> check_bool "stays in slack" false st.Mg.epoch_changed);
    let reqs = trace ~seed:(50 + r) ~requests:6 (Mg.live_nodes mg) in
    let responses = Ss.serve ss reqs in
    Array.iter
      (fun (resp : Serve.response) ->
        check_bool "served" true (resp.Serve.output <> None))
      responses
  done;
  check_int "zero recompiles across 5 deltas" 1 (Ss.recompiles ss);
  check_int "zero re-warms" 0 (Ss.rewarms ss);
  check_int "allocations pinned at warmup" warm
    (Memory.alloc_count (Engine.memory (Serve.engine (Ss.replica ss))));
  check_bool "updates cost simulated time" true (Ss.update_ms ss > 0.0)

let test_epoch_rewarm_pins_weights () =
  let mg = make_mg ~slack:0.05 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  let w0 = Serve.model_weights (Ss.replica ss) in
  let growth =
    { Delta.add_node = 0.4; remove_node = 0.0; add_edge = 0.6; remove_edge = 0.0; set_feat = 0.0 }
  in
  let bumps = ref 0 in
  let r = ref 0 in
  while !bumps = 0 && !r < 20 do
    (match Ss.apply ss (gen_delta ~mix:growth mg ~seed:(200 + !r) ~ops:12) with
    | Error m -> Alcotest.fail m
    | Ok st -> if st.Mg.epoch_changed then incr bumps);
    incr r
  done;
  check_bool "epoch bumped" true (!bumps > 0);
  check_int "one re-warm" 1 (Ss.rewarms ss);
  check_int "one recompile per epoch" 2 (Ss.recompiles ss);
  check_int "slab tagged with the new epoch" (Mg.epoch mg)
    (Serve.slab_epoch (Ss.replica ss));
  let w1 = Serve.model_weights (Ss.replica ss) in
  check_bool "weights pinned across the re-warm" true
    (List.for_all2 (fun (n0, t0) (n1, t1) -> n0 = n1 && t0 == t1) w0 w1);
  (* and the re-warmed replica still matches a from-scratch one *)
  match Ss.check_equivalence ss (trace ~seed:77 ~requests:8 (Mg.live_nodes mg)) with
  | Ok d -> check_bool "post-epoch equivalence" true (d <= 1e-6)
  | Error m -> Alcotest.fail m

let test_backlog_applies_at_boundaries () =
  let mg = make_mg ~slack:3.0 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  Ss.push ss (gen_delta mg ~seed:1 ~ops:5);
  Ss.push ss (gen_delta mg ~seed:2 ~ops:5);
  check_int "two pending" 2 (Ss.pending ss);
  check_int "nothing applied yet" 0 (Mg.counters mg).Mg.deltas;
  ignore (Ss.serve ss (trace ~requests:4 (Mg.live_nodes mg)));
  check_int "backlog drained" 0 (Ss.pending ss);
  check_int "both applied" 2 (Mg.counters mg).Mg.deltas

let test_replay_validates_indices () =
  let mg = make_mg ~slack:3.0 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  let requests = trace ~requests:4 (Mg.live_nodes mg) in
  let d = gen_delta mg ~seed:1 ~ops:3 in
  check_bool "out-of-range index raises" true
    (match Ss.replay ss ~requests ~deltas:[| (9, d) |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "decreasing indices raise" true
    (match Ss.replay ss ~requests ~deltas:[| (3, d); (1, d) |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* THE correctness anchor: a replica that lived through a random delta
   trace answers exactly like one rebuilt from scratch over the final
   snapshot — across models and domain counts *)
let test_equivalence_anchor =
  QCheck.Test.make ~name:"serve-over-deltas ≡ rebuild-from-scratch (≤ 1e-6)"
    ~count:6
    QCheck.(make Gen.(triple (int_range 0 99) (int_range 0 1) (int_range 0 2)))
    (fun (seed, model_i, dom_i) ->
      with_domains [| 1; 2; 4 |].(dom_i) (fun () ->
          let model = [| "rgcn"; "rgat" |].(model_i) in
          let program =
            Hector_models.Model_defs.by_name model ~in_dim:feat_dim ~out_dim:4 ()
          in
          let mg = make_mg ~slack:0.5 ~seed:(seed land 15) () in
          let ss = Ss.create ~config:serve_config ~mg program in
          let requests = trace ~seed ~requests:12 (Mg.live_nodes mg) in
          let deltas =
            [| (4, gen_delta mg ~seed:(seed + 1) ~ops:20) |]
          in
          let _ = Ss.replay ss ~requests ~deltas in
          (* a second wave after the replay, through the backlog path *)
          Ss.push ss (gen_delta mg ~seed:(seed + 2) ~ops:15);
          ignore (Ss.serve ss (trace ~seed:(seed + 3) ~requests:4 (Mg.live_nodes mg)));
          let probe = trace ~seed:(seed + 9) ~requests:8 (Mg.live_nodes mg) in
          match Ss.check_equivalence ss probe with
          | Ok d -> d <= 1e-6
          | Error m -> failwith m))

let test_metrics_json_envelope () =
  let mg = make_mg ~slack:2.0 () in
  let ss = Ss.create ~config:serve_config ~mg (rgcn ()) in
  (match Ss.apply ss (gen_delta mg ~seed:4 ~ops:10) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  ignore (Ss.serve ss (trace ~requests:5 (Mg.live_nodes mg)));
  let json = Ss.metrics_json ss in
  List.iter
    (fun key -> check_bool ("metrics carry " ^ key) true (contains json ("\"" ^ key ^ "\"")))
    [
      "subsystem"; "elapsed_ms"; "launches"; "comm"; "deltas"; "ops"; "epochs";
      "rewarms"; "recompiles"; "csr_rebuilds"; "csr_patched_rows"; "compactions";
      "update_ms"; "served"; "rejected";
    ];
  check_bool "tagged stream" true (contains json "\"subsystem\":\"stream\"")

(* --- knobs ------------------------------------------------------------- *)

let test_stream_knobs () =
  let parse env = Knobs.parse (fun k -> List.assoc_opt k env) in
  let slack env = (parse env).Knobs.stream_slack in
  let compact env = (parse env).Knobs.stream_compact in
  check_bool "slack parses" true (slack [ ("HECTOR_STREAM_SLACK", "0.75") ] = Some 0.75);
  check_bool "slack zero is legal" true (slack [ ("HECTOR_STREAM_SLACK", "0") ] = Some 0.0);
  check_bool "unset slack" true (slack [] = None);
  check_bool "compact parses" true (compact [ ("HECTOR_STREAM_COMPACT", "0.5") ] = Some 0.5);
  check_bool "compact of 1 legal" true (compact [ ("HECTOR_STREAM_COMPACT", "1.0") ] = Some 1.0);
  (* malformed values raise instead of silently falling back *)
  let rejects label env =
    match parse env with
    | _ -> Alcotest.failf "%s accepted" label
    | exception Invalid_argument msg ->
        check_bool (label ^ " error names the knob") true
          (String.length msg > 6 && String.sub msg 0 6 = "Knobs:")
  in
  rejects "negative slack" [ ("HECTOR_STREAM_SLACK", "-1") ];
  rejects "garbage slack" [ ("HECTOR_STREAM_SLACK", "lots") ];
  rejects "compact above 1" [ ("HECTOR_STREAM_COMPACT", "1.5") ];
  rejects "compact of 0" [ ("HECTOR_STREAM_COMPACT", "0") ]

let suite =
  [
    Alcotest.test_case "delta generation is deterministic and valid" `Quick
      test_generate_deterministic;
    Alcotest.test_case "feature-only mix draws no structural ops" `Quick
      test_generate_feature_only_mix;
    QCheck_alcotest.to_alcotest test_apply_csr_and_maps;
    Alcotest.test_case "invalid deltas reject atomically" `Quick test_reject_is_atomic;
    Alcotest.test_case "feature-only deltas reuse graph and CSR" `Quick
      test_feature_only_reuses_graph;
    Alcotest.test_case "edge-only deltas patch the CSR" `Quick test_edge_only_patches_csr;
    Alcotest.test_case "overflow bumps the epoch and renames capacity" `Quick
      test_epoch_bump;
    Alcotest.test_case "capacity graph grants (1+slack)·live per type" `Quick
      test_capacity_graph_bounds;
    Alcotest.test_case "stale ids surface as errors (induce/sampler)" `Quick
      test_stale_ids_surface_as_errors;
    Alcotest.test_case "serving rejects tombstoned seeds without shedding" `Quick
      test_serve_rejects_tombstoned_seed;
    QCheck_alcotest.to_alcotest test_rebalance_invariants;
    Alcotest.test_case "feature-only rebalance reuses every partition" `Quick
      test_rebalance_feature_only_reuses_everything;
    Alcotest.test_case "in-slack serving: zero recompiles, zero allocs" `Quick
      test_inslack_zero_recompile_zero_alloc;
    Alcotest.test_case "epoch re-warm pins weights and stays equivalent" `Quick
      test_epoch_rewarm_pins_weights;
    Alcotest.test_case "pushed deltas apply at micro-batch boundaries" `Quick
      test_backlog_applies_at_boundaries;
    Alcotest.test_case "replay validates delta indices" `Quick test_replay_validates_indices;
    QCheck_alcotest.to_alcotest test_equivalence_anchor;
    Alcotest.test_case "stream metrics use the shared envelope" `Quick
      test_metrics_json_envelope;
    Alcotest.test_case "HECTOR_STREAM_* knobs parse and validate" `Quick
      test_stream_knobs;
  ]
