(* Fused access-scheme GEMM kernels and the plan-lifetime memory planner:
   fused kernels cross-checked against their materialize-then-matmul
   equivalents on randomized shapes and index vectors at several pool
   sizes; Buffer_plan colorings checked for live-range soundness; the
   arena execution path checked for peak-memory savings, steady-state
   zero allocation and output equivalence against the eager path. *)

module T = Hector_tensor.Tensor
module Dp = Hector_tensor.Domain_pool
module Rng = Hector_tensor.Rng
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Memory = Hector_gpu.Memory
module Engine = Hector_gpu.Engine
module Plan = Hector_core.Plan
module Bp = Hector_core.Buffer_plan
module Compiler = Hector_core.Compiler
module Session = Hector_runtime.Session
module Models = Hector_models.Model_defs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_domains n f =
  Dp.set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> Dp.set_num_domains None) f

let randn rng shape =
  let t = T.zeros shape in
  let flat = T.view t [| T.numel t |] in
  for i = 0 to T.numel t - 1 do
    T.set1 flat i (Rng.gaussian rng)
  done;
  t

let rand_idx rng ~len ~bound = Array.init len (fun _ -> Rng.int rng bound)

(* --- fused kernels == materialized reference, bit for bit ----------- *)

(* The fused kernels are specified to preserve the exact floating-point
   operation order of the two-kernel scheme, so the tolerance is zero. *)

let test_gather_gemm () =
  let rng = Rng.create 7 in
  for case = 0 to 19 do
    let na = 1 + Rng.int rng 40 in
    let m = Rng.int rng 60 in
    let k = 1 + Rng.int rng 12 in
    let n = 1 + Rng.int rng 12 in
    let trans_b = case mod 2 = 0 in
    let a = randn rng [| na; k |] in
    let b = if trans_b then randn rng [| n; k |] else randn rng [| k; n |] in
    let idx = rand_idx rng ~len:m ~bound:na in
    let beta = if case mod 3 = 0 then 1.0 else 0.0 in
    let reference = randn rng [| m; n |] in
    let expected = T.copy reference in
    T.matmul_into ~trans_b ~beta (T.gather_rows a idx) b expected;
    List.iter
      (fun d ->
        with_domains d (fun () ->
            let c = T.copy reference in
            T.matmul_gather_into ~trans_b ~beta a ~idx b c;
            check_bool
              (Printf.sprintf "gather case %d (%d domains)" case d)
              true
              (T.max_abs_diff expected c = 0.0)))
      [ 1; 2; 4 ]
  done

let test_scatter_gemm () =
  let rng = Rng.create 8 in
  for case = 0 to 19 do
    let m = Rng.int rng 60 in
    let nc = 1 + Rng.int rng 40 in
    let k = 1 + Rng.int rng 12 in
    let n = 1 + Rng.int rng 12 in
    let trans_b = case mod 2 = 0 in
    let a = randn rng [| m; k |] in
    let b = if trans_b then randn rng [| n; k |] else randn rng [| k; n |] in
    let idx = rand_idx rng ~len:m ~bound:nc in
    let base = randn rng [| nc; n |] in
    let expected = T.copy base in
    if m > 0 then T.scatter_rows_add ~into:expected idx (T.matmul ~trans_b a b);
    List.iter
      (fun d ->
        with_domains d (fun () ->
            let c = T.copy base in
            T.matmul_scatter_add_into ~trans_b a b ~idx c;
            check_bool
              (Printf.sprintf "scatter case %d (%d domains)" case d)
              true
              (T.max_abs_diff expected c = 0.0)))
      [ 1; 2; 4 ]
  done

let test_gather_t_gemm () =
  let rng = Rng.create 9 in
  for case = 0 to 19 do
    let na = 1 + Rng.int rng 40 in
    let m = Rng.int rng 60 in
    let k = 1 + Rng.int rng 12 in
    let n = 1 + Rng.int rng 12 in
    let a = randn rng [| na; k |] in
    let b = randn rng [| m; n |] in
    let idx = rand_idx rng ~len:m ~bound:na in
    let base = randn rng [| k; n |] in
    let expected = T.copy base in
    T.matmul_into ~trans_a:true ~beta:1.0 (T.gather_rows a idx) b expected;
    List.iter
      (fun d ->
        with_domains d (fun () ->
            let c = T.copy base in
            T.matmul_gather_t_into ~beta:1.0 a ~idx b c;
            check_bool
              (Printf.sprintf "gather_t case %d (%d domains)" case d)
              true
              (T.max_abs_diff expected c = 0.0)))
      [ 1; 2; 4 ]
  done

let test_bad_indices_raise () =
  let a = T.zeros [| 4; 3 |] and b = T.zeros [| 3; 2 |] in
  let c = T.zeros [| 2; 2 |] in
  let raises f = match f () with exception T.Shape_error _ -> true | _ -> false in
  check_bool "gather idx out of range" true
    (raises (fun () -> T.matmul_gather_into a ~idx:[| 0; 4 |] b c));
  check_bool "scatter idx out of range" true
    (raises (fun () -> T.matmul_scatter_add_into (T.zeros [| 2; 3 |]) b ~idx:[| 0; 2 |] c));
  check_bool "gather idx negative" true
    (raises (fun () -> T.matmul_gather_into a ~idx:[| -1; 0 |] b c));
  check_bool "scatter idx count mismatch" true
    (raises (fun () -> T.matmul_scatter_add_into (T.zeros [| 2; 3 |]) b ~idx:[| 0 |] c))

(* --- planner coloring soundness ------------------------------------- *)

let test_graph ?(seed = 3) () =
  Gen.generate
    {
      Gen.name = "t";
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes = 60;
      num_edges = 200;
      compaction_target = 0.5;
      seed;
      scale = 1.0;
    }

let compile ?(training = false) ~compact ~fusion model =
  Compiler.compile
    ~options:(Compiler.options_of_flags ~training ~compact ~fusion ())
    (Models.by_name model ~in_dim:8 ~out_dim:4 ())

let all_plans compiled =
  compiled.Compiler.forward :: Option.to_list compiled.Compiler.backward

let test_coloring_sound () =
  List.iter
    (fun (model, training, compact, fusion) ->
      List.iter
        (fun (plan : Plan.t) ->
          let memory =
            match plan.Plan.memory with
            | Some m -> m
            | None -> Alcotest.failf "%s: lowering left no memory plan" plan.Plan.name
          in
          (* exactly one placement per buffer *)
          check_int
            (plan.Plan.name ^ ": one placement per buffer")
            (List.length plan.Plan.buffers)
            (List.length memory.Plan.placements);
          let by_slot = Hashtbl.create 8 in
          List.iter
            (fun (p : Plan.placement) ->
              Hashtbl.replace by_slot p.Plan.slot
                (p :: Option.value ~default:[] (Hashtbl.find_opt by_slot p.Plan.slot)))
            memory.Plan.placements;
          let buffer name =
            List.find (fun (b : Plan.buffer) -> String.equal b.Plan.name name) plan.Plan.buffers
          in
          Hashtbl.iter
            (fun slot members ->
              if List.length members > 1 then begin
                (* only freeable temporaries may share *)
                List.iter
                  (fun (p : Plan.placement) ->
                    check_bool
                      (Printf.sprintf "%s: shared slot %d member %s is temp" plan.Plan.name
                         slot p.Plan.var)
                      true (buffer p.Plan.var).Plan.temp)
                  members;
                (* live ranges of co-located buffers are strictly disjoint *)
                let sorted =
                  List.sort
                    (fun (a : Plan.placement) (b : Plan.placement) ->
                      compare a.Plan.first b.Plan.first)
                    members
                in
                ignore
                  (List.fold_left
                     (fun prev (p : Plan.placement) ->
                       (match prev with
                       | Some (q : Plan.placement) ->
                           check_bool
                             (Printf.sprintf "%s: slot %d ranges [%d,%d] and [%d,%d] disjoint"
                                plan.Plan.name slot q.Plan.first q.Plan.last p.Plan.first
                                p.Plan.last)
                             true
                             (q.Plan.last < p.Plan.first)
                       | None -> ());
                       Some p)
                     None sorted)
              end)
            by_slot;
          (* uninit-ok never claimed for zero-initialized accumulators *)
          List.iter
            (fun (p : Plan.placement) ->
              if p.Plan.uninit_ok then
                check_bool
                  (plan.Plan.name ^ ": uninit_ok only on non-zero-init " ^ p.Plan.var)
                  false (buffer p.Plan.var).Plan.zero_init)
            memory.Plan.placements;
          (* the analysis is deterministic and matches what lowering stored *)
          let again = Bp.analyze plan in
          check_int
            (plan.Plan.name ^ ": re-analysis slot count")
            memory.Plan.num_slots again.Plan.num_slots)
        (all_plans (compile ~training ~compact ~fusion model)))
    [
      ("rgcn", true, false, false);
      ("rgat", false, true, false);
      ("rgat", true, false, true);
      ("hgt", false, false, false);
    ]

(* --- arena execution: memory and equivalence ------------------------ *)

let peak_of ~planner model =
  let graph = test_graph () in
  let s = Session.create ~seed:5 ~memory_planner:planner ~graph (compile ~compact:false ~fusion:false model) in
  ignore (Session.forward s);
  Memory.peak_bytes (Engine.memory (Session.engine s))

let test_peak_decreases () =
  List.iter
    (fun model ->
      let on = peak_of ~planner:true model in
      let off = peak_of ~planner:false model in
      check_bool
        (Printf.sprintf "%s: planner peak %.0f < eager peak %.0f" model on off)
        true (on < off))
    (* single-layer RGAT temps all overlap (nothing to share); RGCN's self
       projection and HGT's per-head pipeline have disjoint temporaries *)
    [ "rgcn"; "hgt" ]

let test_steady_state_no_alloc () =
  let graph = test_graph () in
  let s =
    Session.create ~seed:5 ~memory_planner:true ~graph
      (compile ~training:true ~compact:false ~fusion:false "rgcn")
  in
  let labels = Array.init graph.G.num_nodes (fun i -> i mod 4) in
  (* first two steps create the arenas (forward, backward) and the loss
     seed; from then on the device allocator must not move *)
  ignore (Session.train_step s ~labels ());
  ignore (Session.train_step s ~labels ());
  let mem = Engine.memory (Session.engine s) in
  let before = Memory.alloc_count mem in
  ignore (Session.train_step s ~labels ());
  ignore (Session.train_step s ~labels ());
  check_int "steady-state training allocates no device buffers" before (Memory.alloc_count mem)

let test_planner_equivalence () =
  List.iter
    (fun (model, compact, fusion) ->
      let graph = test_graph () in
      let run planner =
        let s =
          Session.create ~seed:5 ~memory_planner:planner ~graph (compile ~compact ~fusion model)
        in
        ignore (Session.forward s);
        (* second run exercises arena reuse, not just first-run binding *)
        List.map snd (Session.forward s)
      in
      List.iter2
        (fun a b ->
          check_bool
            (Printf.sprintf "%s (compact=%b fusion=%b): planner output == eager output" model
               compact fusion)
            true
            (T.max_abs_diff a b = 0.0))
        (run true) (run false))
    [ ("rgcn", false, false); ("rgat", true, false); ("hgt", false, false); ("rgat", false, true) ]

let test_training_equivalence () =
  let graph = test_graph () in
  let labels = Array.init graph.G.num_nodes (fun i -> i mod 4) in
  let losses planner =
    let s =
      Session.create ~seed:5 ~memory_planner:planner ~graph
        (compile ~training:true ~compact:false ~fusion:false "rgcn")
    in
    List.init 3 (fun _ -> Session.train_step s ~labels ())
  in
  List.iter2
    (fun a b -> check_bool (Printf.sprintf "loss %.17g == %.17g" a b) true (Float.equal a b))
    (losses true) (losses false)

let suite =
  [
    Alcotest.test_case "fused gather GEMM == gather + GEMM" `Quick test_gather_gemm;
    Alcotest.test_case "fused scatter GEMM == GEMM + scatter" `Quick test_scatter_gemm;
    Alcotest.test_case "fused transpose-gather GEMM == gather + GEMM^T" `Quick test_gather_t_gemm;
    Alcotest.test_case "fused kernels validate indices" `Quick test_bad_indices_raise;
    Alcotest.test_case "planner coloring is sound" `Quick test_coloring_sound;
    Alcotest.test_case "planner reduces peak memory" `Quick test_peak_decreases;
    Alcotest.test_case "steady-state training allocates nothing" `Quick test_steady_state_no_alloc;
    Alcotest.test_case "planner output equivalence" `Quick test_planner_equivalence;
    Alcotest.test_case "planner training equivalence" `Quick test_training_equivalence;
  ]
