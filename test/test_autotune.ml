(* Tests for the cost-model-guided autotuner and the persistent tuning
   database: estimator exactness, top-k ranking quality, relabel-invariant
   graph signatures, DB round-trips and the zero-search / zero-compile
   admission pin for warm database hits. *)

module Compiler = Hector_core.Compiler
module Ir = Hector_core.Inter_ir
module G = Hector_graph.Hetgraph
module Gen = Hector_graph.Generator
module Dp = Hector_tensor.Domain_pool
module Device = Hector_gpu.Device
module Autotune = Hector_runtime.Autotune
module Tuning_db = Hector_runtime.Tuning_db
module Knobs = Hector_runtime.Knobs
module Workload = Hector_serve.Workload
module Serve = Hector_serve.Serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_of_seed ?(num_nodes = 120) ?(num_edges = 400) seed =
  Gen.generate
    {
      Gen.name = Printf.sprintf "tune_%d" seed;
      num_ntypes = 3;
      num_etypes = 6;
      num_nodes;
      num_edges;
      compaction_target = 0.4;
      scale = 1.0;
      seed;
    }

let model_names = [| "rgcn"; "rgat"; "hgt" |]
let model_of_idx i = Hector_models.Model_defs.by_name model_names.(i) ~in_dim:8 ~out_dim:4 ()
let options_id = Compiler.options_id

let with_domains n f =
  Dp.set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> Dp.set_num_domains None) f

(* --- stage 1: the analytic estimator ------------------------------- *)

(* The simulator is deterministic and the estimator replays the same
   launch descriptors, so the prediction must agree with the measured
   steady-state epoch on every candidate the search measures — and the
   measured winner must sit inside the estimator's top-k ranking (the
   whole point of pruning the space by estimate). *)
let prop_best_in_topk =
  QCheck.Test.make ~name:"measured best lies in the estimator top-k" ~count:5
    QCheck.(make Gen.(triple (int_range 0 2) (int_range 0 40) (int_range 1 2)))
    (fun (model_idx, seed, domains) ->
      with_domains domains (fun () ->
          let graph = graph_of_seed seed in
          let training = seed mod 2 = 0 in
          let top_k = 4 in
          let r = Autotune.search ~training ~top_k ~graph (model_of_idx model_idx) in
          let top_ids =
            List.filteri (fun i _ -> i < top_k) r.Autotune.ranked
            |> List.map (fun (c : Autotune.candidate) -> options_id c.Autotune.options)
          in
          let as_fast_in_top =
            List.exists
              (fun (c : Autotune.candidate) ->
                List.mem (options_id c.Autotune.options) top_ids
                && c.Autotune.time_ms <= r.Autotune.best.Autotune.time_ms +. 1e-9)
              r.Autotune.all
          in
          let exact =
            List.for_all
              (fun (c : Autotune.candidate) ->
                (not (Float.is_finite c.Autotune.time_ms))
                || Float.abs (c.Autotune.estimated_ms -. c.Autotune.time_ms)
                   <= 1e-6 *. Float.max 1.0 c.Autotune.time_ms)
              r.Autotune.all
          in
          as_fast_in_top && exact))

let test_estimator_exact_fixed_layouts () =
  (* schedules:false measures all four U/C/F/C+F configurations; each
     estimate must match its measurement bit-for-bit on the simulator *)
  let graph = graph_of_seed 7 in
  let r = Autotune.search ~schedules:false ~graph (model_of_idx 1) in
  check_int "four candidates" 4 (List.length r.Autotune.all);
  List.iter
    (fun (c : Autotune.candidate) ->
      if Float.is_finite c.Autotune.time_ms then
        check_bool
          (Printf.sprintf "estimate matches measurement for %s" (options_id c.Autotune.options))
          true
          (Float.abs (c.Autotune.estimated_ms -. c.Autotune.time_ms) <= 1e-9))
    r.Autotune.all

(* --- graph signatures ---------------------------------------------- *)

(* Shuffle node ids within each type block (node types must stay sorted)
   and rebuild the graph: a pure relabeling of the same graph. *)
let relabel g seed =
  let perm = Array.init g.G.num_nodes (fun i -> i) in
  let st = Random.State.make [| seed |] in
  for t = 0 to G.num_ntypes g - 1 do
    let start, count = G.nodes_of_type g t in
    for i = count - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = perm.(start + i) in
      perm.(start + i) <- perm.(start + j);
      perm.(start + j) <- tmp
    done
  done;
  let edges =
    Array.init g.G.num_edges (fun e ->
        (perm.(g.G.src.(e)), perm.(g.G.dst.(e)), g.G.etype.(e)))
  in
  G.create ~name:(g.G.name ^ "_relabel") ~scale:g.G.scale ~metagraph:g.G.metagraph
    ~node_type:g.G.node_type ~edges ()

let signature_equal (a : Tuning_db.signature) (b : Tuning_db.signature) =
  a.Tuning_db.nodes_per_ntype = b.Tuning_db.nodes_per_ntype
  && a.Tuning_db.edges_per_etype = b.Tuning_db.edges_per_etype
  && Float.abs (a.Tuning_db.mean_degree -. b.Tuning_db.mean_degree) < 1e-12

let prop_signature_stable =
  QCheck.Test.make ~name:"graph signature deterministic and relabel-invariant" ~count:25
    QCheck.(make Gen.(pair (int_range 0 100) (int_range 1 1000)))
    (fun (seed, relabel_seed) ->
      let g = graph_of_seed seed in
      signature_equal (Tuning_db.signature g) (Tuning_db.signature (graph_of_seed seed))
      && signature_equal (Tuning_db.signature g) (Tuning_db.signature (relabel g relabel_seed)))

(* --- stage 2: the persistent database ------------------------------ *)

let sample_entry ?(model = "fp-1") ?(device = "RTX 3090") ?(training = false)
    ?(options = Compiler.options_of_flags ~compact:true ~fusion:true ()) graph =
  (model, device, training, Tuning_db.signature graph, options)

let record_sample db (model, device, training, signature, options) =
  Tuning_db.record db ~model ~model_name:"rgat" ~device ~training ~signature ~options
    ~estimated_ms:0.125 ~measured_ms:0.125

let test_db_roundtrip () =
  let db = Tuning_db.create () in
  let g300 = graph_of_seed 3 in
  let g_alt = graph_of_seed ~num_nodes:260 ~num_edges:900 4 in
  record_sample db (sample_entry g300);
  record_sample db
    (sample_entry ~model:"fp-2"
       ~options:
         {
           (Compiler.options_of_flags ~compact:false ~fusion:true ()) with
           Compiler.gemm_schedule =
             { Hector_core.Gemm_spec.tile_width = 32; coarsen = 2; launch_bounds = true };
           fuse_ops = Some false;
         }
       g_alt);
  let path = Filename.temp_file "hector_tunedb" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tuning_db.save db path;
      let loaded = Tuning_db.load path in
      check_int "round-trip size" (Tuning_db.size db) (Tuning_db.size loaded);
      List.iter2
        (fun (a : Tuning_db.entry) (b : Tuning_db.entry) ->
          check_bool "entry model" true (a.Tuning_db.model = b.Tuning_db.model);
          check_bool "entry options" true
            (options_id a.Tuning_db.options = options_id b.Tuning_db.options);
          check_bool "entry measured" true
            (a.Tuning_db.measured_ms = b.Tuning_db.measured_ms);
          check_bool "entry signature" true
            (signature_equal a.Tuning_db.signature b.Tuning_db.signature))
        (Tuning_db.entries db) (Tuning_db.entries loaded);
      (* a lookup against the reloaded database behaves identically *)
      match
        ( Tuning_db.lookup db ~model:"fp-1" ~device:"RTX 3090" ~training:false
            (Tuning_db.signature g300),
          Tuning_db.lookup loaded ~model:"fp-1" ~device:"RTX 3090" ~training:false
            (Tuning_db.signature g300) )
      with
      | Some (Tuning_db.Exact a), Some (Tuning_db.Exact b) ->
          check_bool "lookup identity" true
            (options_id a.Tuning_db.options = options_id b.Tuning_db.options)
      | _ -> Alcotest.fail "expected exact hits from both databases")

let test_db_load_corrupt_and_missing () =
  check_int "missing file is empty" 0 (Tuning_db.size (Tuning_db.load "/nonexistent/tunedb.json"));
  let path = Filename.temp_file "hector_tunedb" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "{ not json ]";
      close_out oc;
      check_int "corrupt file is empty" 0 (Tuning_db.size (Tuning_db.load path)))

let test_lookup_ladder () =
  let db = Tuning_db.create () in
  let g = graph_of_seed 3 in
  (* same type-structure shape, ~4x the size: lands in different buckets *)
  let g_big = graph_of_seed ~num_nodes:480 ~num_edges:1600 3 in
  record_sample db (sample_entry g);
  (match Tuning_db.lookup db ~model:"fp-1" ~device:"RTX 3090" ~training:false (Tuning_db.signature g) with
  | Some (Tuning_db.Exact _) -> ()
  | _ -> Alcotest.fail "expected an exact hit for the recorded signature");
  (match
     Tuning_db.lookup db ~model:"fp-1" ~device:"RTX 3090" ~training:false
       (Tuning_db.signature g_big)
   with
  | Some (Tuning_db.Nearest _) -> ()
  | Some (Tuning_db.Exact _) -> Alcotest.fail "4x graph should not bucketize identically"
  | None -> Alcotest.fail "same-shaped signature should find a nearest entry");
  (* wrong model / device / training: no rung of the ladder applies *)
  check_bool "other model misses" true
    (Tuning_db.lookup db ~model:"fp-other" ~device:"RTX 3090" ~training:false
       (Tuning_db.signature g)
    = None);
  check_bool "other device misses" true
    (Tuning_db.lookup db ~model:"fp-1" ~device:"A100" ~training:false (Tuning_db.signature g)
    = None);
  check_bool "training flag misses" true
    (Tuning_db.lookup db ~model:"fp-1" ~device:"RTX 3090" ~training:true (Tuning_db.signature g)
    = None);
  (* once the big graph is recorded too, its exact entry wins over nearest *)
  record_sample db
    (sample_entry ~options:(Compiler.options_of_flags ~compact:false ~fusion:false ()) g_big);
  match
    Tuning_db.lookup db ~model:"fp-1" ~device:"RTX 3090" ~training:false
      (Tuning_db.signature g_big)
  with
  | Some (Tuning_db.Exact e) ->
      check_bool "exact beats nearest" true
        (options_id e.Tuning_db.options
        = options_id (Compiler.options_of_flags ~compact:false ~fusion:false ()))
  | _ -> Alcotest.fail "expected the freshly recorded exact entry"

let test_warmup_writes_back_then_hits () =
  let graph = graph_of_seed 11 in
  let program = model_of_idx 0 in
  let path = Filename.temp_file "hector_tunedb" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Autotune.reset_counters ();
      let first = Autotune.warmup ~db_path:path ~graph program in
      check_int "cold warmup searches once" 1 (Autotune.search_count ());
      check_bool "database persisted" true (Sys.file_exists path);
      Autotune.reset_counters ();
      let second = Autotune.warmup ~db_path:path ~graph program in
      check_int "warm warmup does not search" 0 (Autotune.search_count ());
      check_int "warm warmup compiles no candidates" 0 (Autotune.candidate_compiles ());
      check_bool "warm hit returns the recorded winner" true
        (options_id first = options_id second))

(* --- the admission pin --------------------------------------------- *)

let test_warm_db_admission_zero_search () =
  (* Counter-witnessed: with a warm tuning database, creating a serving
     replica (autotune enabled) and serving requests performs ZERO
     autotune searches, candidate compiles and measured runs — the
     admission path resolves options purely by database lookup. *)
  let graph =
    Gen.generate
      {
        Gen.name = "tune_serve";
        num_ntypes = 3;
        num_etypes = 6;
        num_nodes = 200;
        num_edges = 800;
        compaction_target = 0.5;
        scale = 1.0;
        seed = 33;
      }
  in
  let program = Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:4 () in
  let path = Filename.temp_file "hector_tunedb" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* warm the database off the request path *)
      let db = Tuning_db.create () in
      ignore (Autotune.search ~db ~graph program);
      Tuning_db.save db path;
      Autotune.reset_counters ();
      let config =
        {
          Serve.default_config with
          Serve.fanout = Serve.exact_fanout graph;
          hops = 2;
          max_batch = Some 4;
          max_wait_ms = 5.0;
          queue_capacity = Some 64;
          autotune = true;
          tune_db = Some path;
        }
      in
      let server = Serve.create ~config ~graph program in
      check_int "admission performs zero searches" 0 (Autotune.search_count ());
      check_int "admission compiles zero candidates" 0 (Autotune.candidate_compiles ());
      check_int "admission measures zero candidates" 0 (Autotune.measured_runs ());
      let requests =
        Workload.generate
          ~spec:{ Workload.default_spec with Workload.requests = 6; seeds_per_request = 2 }
          ~num_nodes:graph.G.num_nodes ()
      in
      let responses = Serve.serve server requests in
      check_int "all requests answered" (Array.length requests) (Array.length responses);
      check_int "serving performs zero searches" 0 (Autotune.search_count ());
      check_int "serving compiles zero candidates" 0 (Autotune.candidate_compiles ());
      check_int "serving measures zero candidates" 0 (Autotune.measured_runs ()))

let test_cold_db_with_autotune_searches_once () =
  (* the complementary direction: an empty database plus autotune:true
     searches exactly once at warmup and records the winner back *)
  let graph = graph_of_seed ~num_nodes:150 ~num_edges:500 21 in
  let program = Hector_models.Model_defs.rgcn ~in_dim:8 ~out_dim:4 () in
  let path = Filename.temp_file "hector_tunedb" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Autotune.reset_counters ();
      let config =
        {
          Serve.default_config with
          Serve.fanout = Serve.exact_fanout graph;
          hops = 2;
          autotune = true;
          tune_db = Some path;
        }
      in
      ignore (Serve.create ~config ~graph program);
      check_int "cold warmup searches once" 1 (Autotune.search_count ());
      check_bool "winner recorded for the next replica" true
        (Sys.file_exists path && Tuning_db.size (Tuning_db.load path) = 1))

(* --- knob ----------------------------------------------------------- *)

let test_tune_db_knob () =
  let with_env value = Knobs.parse (fun k -> if k = "HECTOR_TUNE_DB" then value else None) in
  check_bool "set" true ((with_env (Some "/tmp/db.json")).Knobs.tune_db = Some "/tmp/db.json");
  check_bool "trimmed" true ((with_env (Some "  /tmp/db.json ")).Knobs.tune_db = Some "/tmp/db.json");
  check_bool "empty is off" true ((with_env (Some "")).Knobs.tune_db = None);
  check_bool "absent is off" true ((with_env None).Knobs.tune_db = None)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true prop_best_in_topk;
    Alcotest.test_case "estimator exact on fixed layouts" `Quick test_estimator_exact_fixed_layouts;
    QCheck_alcotest.to_alcotest prop_signature_stable;
    Alcotest.test_case "tuning DB round-trip" `Quick test_db_roundtrip;
    Alcotest.test_case "tuning DB corrupt/missing load" `Quick test_db_load_corrupt_and_missing;
    Alcotest.test_case "lookup ladder" `Quick test_lookup_ladder;
    Alcotest.test_case "warmup writes back then hits" `Quick test_warmup_writes_back_then_hits;
    Alcotest.test_case "warm DB admission: zero search/compile" `Quick
      test_warm_db_admission_zero_search;
    Alcotest.test_case "cold DB with autotune searches once" `Quick
      test_cold_db_with_autotune_searches_once;
    Alcotest.test_case "HECTOR_TUNE_DB knob" `Quick test_tune_db_knob;
  ]
